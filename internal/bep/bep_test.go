package bep

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/value"
)

func iv(i int64) value.Value                          { return value.NewInt(i) }
func sv(s string) value.Value                         { return value.NewString(s) }
func attrs(as ...schema.Attribute) []schema.Attribute { return as }

// Example 1.1: Q0 is boundedly evaluable (covered directly).
func TestQ0Bounded(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("Accident", "aid", "district", "date"),
		schema.MustRelation("Casualty", "cid", "aid", "class", "vid"),
		schema.MustRelation("Vehicle", "vid", "driver", "age"),
	)
	a := access.NewSchema(
		access.NewConstraint("Accident", attrs("date"), attrs("aid"), 610),
		access.NewConstraint("Casualty", attrs("aid"), attrs("vid"), 192),
		access.NewConstraint("Accident", attrs("aid"), attrs("district", "date"), 1),
		access.NewConstraint("Vehicle", attrs("vid"), attrs("driver", "age"), 1),
	)
	q := &cq.CQ{
		Label: "Q0", Free: []string{"xa"},
		Atoms: []cq.Atom{
			cq.NewAtom("Accident", cq.Var("aid"), cq.Const(sv("Queen's Park")), cq.Const(sv("1/5/2005"))),
			cq.NewAtom("Casualty", cq.Var("cid"), cq.Var("aid"), cq.Var("class"), cq.Var("vid")),
			cq.NewAtom("Vehicle", cq.Var("vid"), cq.Var("dri"), cq.Var("xa")),
		},
	}
	d, err := Decide(q, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != Bounded {
		t.Fatalf("Q0 verdict = %v", d.Verdict)
	}
	if len(d.Rewrites) != 0 {
		t.Errorf("Q0 needs no rewrites: %v", d.Rewrites)
	}
}

// Example 3.1(1): Q1 is NOT boundedly evaluable; the checker reports
// Unknown with condition-(c) diagnostics (no rewrite can help — A1 cannot
// verify that x and y come from the same tuple).
func TestExample31_1_Unknown(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R1", "A", "B", "E", "F"))
	a1 := access.NewSchema(
		access.NewConstraint("R1", attrs("A"), attrs("B"), 3),
		access.NewConstraint("R1", attrs("E"), attrs("F"), 4),
	)
	q1 := &cq.CQ{
		Label: "Q1", Free: []string{"x", "y"},
		Atoms: []cq.Atom{cq.NewAtom("R1", cq.Var("x1"), cq.Var("x"), cq.Var("x2"), cq.Var("y"))},
		Eqs: []cq.Eq{
			{L: cq.Var("x1"), R: cq.Const(iv(1))},
			{L: cq.Var("x2"), R: cq.Const(iv(1))},
		},
	}
	d, err := Decide(q1, a1, s, Options{UseAContainment: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != Unknown {
		t.Fatalf("Q1 verdict = %v, want Unknown (paper: no bounded plan exists)", d.Verdict)
	}
	if d.Cover == nil || d.Cover.Covered {
		t.Error("diagnostics should show the failed coverage check")
	}
}

// Example 3.1(2): Q2 is boundedly evaluable because it is A2-unsatisfiable;
// the chase detects the contradiction.
func TestExample31_2_BoundedEmpty(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R2", "A", "B"))
	a2 := access.NewSchema(access.NewConstraint("R2", attrs("A"), attrs("B"), 1))
	q2 := &cq.CQ{
		Label: "Q2", Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R2", cq.Var("x"), cq.Var("x1")),
			cq.NewAtom("R2", cq.Var("x"), cq.Var("x2")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("x1"), R: cq.Const(iv(1))},
			{L: cq.Var("x2"), R: cq.Const(iv(2))},
		},
	}
	d, err := Decide(q2, a2, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != BoundedEmpty {
		t.Fatalf("Q2 verdict = %v, want BoundedEmpty", d.Verdict)
	}
	if len(d.Rewrites) == 0 || !strings.Contains(d.Rewrites[0], "contradiction") {
		t.Errorf("rewrites = %v", d.Rewrites)
	}
}

// Example 3.1(3): Q3 is boundedly evaluable via the A3-equivalent covered
// rewriting (chase merges x=y=z3, then the spare atom drops).
func TestExample31_3_BoundedViaRewrite(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R3", "A", "B", "C"))
	a3 := access.NewSchema(
		access.NewConstraint("R3", nil, attrs("C"), 1),
		access.NewConstraint("R3", attrs("A", "B"), attrs("C"), 5),
	)
	q3 := &cq.CQ{
		Label: "Q3", Free: []string{"x", "y"},
		Atoms: []cq.Atom{
			cq.NewAtom("R3", cq.Var("x1"), cq.Var("x2"), cq.Var("x")),
			cq.NewAtom("R3", cq.Var("z1"), cq.Var("z2"), cq.Var("y")),
			cq.NewAtom("R3", cq.Var("x"), cq.Var("y"), cq.Var("z3")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("x1"), R: cq.Const(iv(1))},
			{L: cq.Var("x2"), R: cq.Const(iv(1))},
		},
	}
	// Q3 itself IS covered (Example 3.10), so first check that the direct
	// path works, then force the rewrite path by removing coverage of the
	// middle atom... instead, verify on the non-covered variant: swap the
	// wide constraint for one that no longer indexes the z-atom.
	d, err := Decide(q3, a3, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != Bounded {
		t.Fatalf("Q3 verdict = %v, want Bounded", d.Verdict)
	}
}

// A query that is NOT covered as written but becomes covered after
// A-redundant atom elimination: the extra S-atom joins through an
// uncovered variable, yet is classically subsumed by the first S-atom.
func TestDropRedundantRewrite(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("R", "A", "B"),
		schema.MustRelation("S", "A", "B"),
	)
	a := access.NewSchema(
		access.NewConstraint("R", attrs("A"), attrs("B"), 2),
		access.NewConstraint("S", attrs("A"), attrs("B"), 2),
	)
	// Q(x) :- R(c, x), S(x, w), S(x2, w), c = 1.
	// As written, atom S(x2, w) is unindexed (x2 is never covered and w
	// occurs twice). Mapping x2 -> x shows the atom is redundant; the
	// remainder is covered.
	q := &cq.CQ{
		Label: "QDR", Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("c"), cq.Var("x")),
			cq.NewAtom("S", cq.Var("x"), cq.Var("w")),
			cq.NewAtom("S", cq.Var("x2"), cq.Var("w")),
		},
		Eqs: []cq.Eq{{L: cq.Var("c"), R: cq.Const(iv(1))}},
	}
	res, err := cover.Check(q, a, s, cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Fatal("fixture error: QDR should not be covered as written")
	}
	d, err := Decide(q, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != Bounded {
		t.Fatalf("QDR verdict = %v, want Bounded via drop; rewrites=%v", d.Verdict, d.Rewrites)
	}
	if len(d.Rewrites) == 0 {
		t.Error("rewrites should be recorded")
	}
	if d.Witness == nil || len(d.Witness.Atoms) != 2 {
		t.Errorf("witness should keep two atoms: %v", d.Witness)
	}
}

// Example 3.5 (second part): Q = Q1 ∪ Q2 is boundedly evaluable as a UCQ
// although sub-query Q2 alone is not.
func TestExample35_UCQBounded(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("Rp", "A", "B", "C"))
	ap := access.NewSchema(access.NewConstraint("Rp", attrs("A"), attrs("B"), 4))
	q1 := &cq.CQ{Label: "Q1", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
		Eqs:   []cq.Eq{{L: cq.Var("x"), R: cq.Const(iv(1))}}}
	q2 := &cq.CQ{Label: "Q2", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
		Eqs: []cq.Eq{
			{L: cq.Var("x"), R: cq.Const(iv(1))},
			{L: cq.Var("z"), R: cq.Var("y")},
		}}
	ud, err := DecideUCQ([]*cq.CQ{q1, q2}, ap, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ud.Verdict != Bounded {
		t.Fatalf("UCQ verdict = %v, want Bounded", ud.Verdict)
	}
	// Q2 alone: Unknown.
	d2, err := Decide(q2, ap, s, Options{UseAContainment: true})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Verdict != Unknown {
		t.Fatalf("Q2 alone = %v, want Unknown", d2.Verdict)
	}
}

func TestDecideUCQAllEmpty(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 1))
	unsat := &cq.CQ{Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("x"), cq.Var("u")),
			cq.NewAtom("R", cq.Var("x"), cq.Var("v")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("u"), R: cq.Const(iv(1))},
			{L: cq.Var("v"), R: cq.Const(iv(2))},
		}}
	ud, err := DecideUCQ([]*cq.CQ{unsat}, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ud.Verdict != BoundedEmpty {
		t.Fatalf("verdict = %v, want BoundedEmpty", ud.Verdict)
	}
}

func TestChaseMergesViaEmptyX(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B", "C"))
	a := access.NewSchema(access.NewConstraint("R", nil, attrs("C"), 1))
	q := &cq.CQ{Free: []string{"x", "y"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("a1"), cq.Var("b1"), cq.Var("x")),
			cq.NewAtom("R", cq.Var("a2"), cq.Var("b2"), cq.Var("y")),
		}}
	cr, err := chase(q, a, s)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Unsat || !cr.Changed {
		t.Fatalf("chase should merge x,y: %+v", cr)
	}
	// After the chase, x and y must be the same variable.
	cls := cr.Q.EqClassesPlus()
	if cr.Q.Free[0] != cr.Q.Free[1] && !cls.Same(cr.Q.Free[0], cr.Q.Free[1]) {
		t.Errorf("x and y should be identified: free=%v", cr.Q.Free)
	}
}

func TestChaseConstantPropagation(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 1))
	// R(x, u), R(x, v), u = 5: chase merges u, v and pins both to 5.
	q := &cq.CQ{Free: []string{"v"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("x"), cq.Var("u")),
			cq.NewAtom("R", cq.Var("x"), cq.Var("v")),
		},
		Eqs: []cq.Eq{{L: cq.Var("u"), R: cq.Const(iv(5))}}}
	cr, err := chase(q, a, s)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Unsat {
		t.Fatal("no contradiction here")
	}
	cls := cr.Q.EqClassesPlus()
	if !cls.IsConstantVar(cr.Q.Free[0]) || cls.ConstOf(cr.Q.Free[0]) != iv(5) {
		t.Errorf("v should be pinned to 5 after chase: %s", cr.Q)
	}
}

func TestChaseIgnoresWideBounds(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 2))
	q := &cq.CQ{Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("x"), cq.Var("u")),
			cq.NewAtom("R", cq.Var("x"), cq.Var("v")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("u"), R: cq.Const(iv(1))},
			{L: cq.Var("v"), R: cq.Const(iv(2))},
		}}
	cr, err := chase(q, a, s)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Unsat {
		t.Error("bound 2 is not a functional dependency; no contradiction")
	}
}

func TestVerdictStrings(t *testing.T) {
	for _, v := range []Verdict{Bounded, BoundedEmpty, Unknown} {
		if v.String() == "" || strings.HasPrefix(v.String(), "verdict(") {
			t.Errorf("String(%d) = %q", int(v), v.String())
		}
	}
}
