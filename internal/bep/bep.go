// Package bep decides the bounded evaluability problem (BEP, Section 3):
// given a query Q and an access schema A, is Q boundedly evaluable under A?
//
// BEP is EXPSPACE-complete for CQ (Theorem 3.4) and undecidable for FO, so
// no implementation can be both complete and practical. This checker
// implements the strategy the paper itself recommends: decide the covered
// fragment exactly (PTIME, Theorem 3.11) and search for an A-equivalent
// covered rewriting using sound transformations —
//
//  1. the FD chase with bound-1 constraints (captures Examples 3.1(2) and
//     3.1(3)'s variable merging, and detects A-unsatisfiable queries,
//     which are boundedly evaluable via the empty plan);
//  2. elimination of A-redundant atoms (classical containment first, full
//     A-containment à la Lemma 3.3 as a fallback for small queries).
//
// Verdicts are three-valued: Bounded (with the covered witness query),
// NotCovered (no rewriting in our closure is covered — sound "unknown"),
// and BoundedEmpty (A-unsatisfiable).
package bep

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/ainstance"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/schema"
)

// Verdict classifies the checker's outcome.
type Verdict int

const (
	// Bounded: the query is boundedly evaluable; Witness is covered and
	// A-equivalent to the input.
	Bounded Verdict = iota
	// BoundedEmpty: the query is A-unsatisfiable, hence boundedly
	// evaluable via the empty plan.
	BoundedEmpty
	// Unknown: not covered after every rewrite in the checker's closure.
	// The query may still be boundedly evaluable (BEP is EXPSPACE-complete;
	// this is the price of a practical checker).
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case Bounded:
		return "bounded"
	case BoundedEmpty:
		return "bounded (A-unsatisfiable, empty plan)"
	case Unknown:
		return "unknown (not covered after rewrites)"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Options tunes the checker.
type Options struct {
	// UseAContainment enables the expensive A-containment fallback when
	// testing atom redundancy (A-instance enumeration). Classical
	// containment is always tried first.
	UseAContainment bool
	// AInstance configures the enumeration when UseAContainment is set.
	AInstance ainstance.Options
	// Cover configures the coverage checks.
	Cover cover.Options
}

// Decision is the full outcome of a BEP check.
type Decision struct {
	Verdict Verdict
	// Input is the query as given.
	Input *cq.CQ
	// Witness is the A-equivalent covered query certifying boundedness
	// (equal to the normalized input when it is covered as-is). Nil for
	// Unknown verdicts.
	Witness *cq.CQ
	// Cover is the covered-check result for Witness (Bounded) or for the
	// final rewriting attempt (Unknown — its diagnostics say what failed).
	Cover *cover.Result
	// Rewrites lists the transformations applied, in order.
	Rewrites []string
}

// Decide runs the BEP checker on a CQ.
func Decide(q *cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (*Decision, error) {
	dec := &Decision{Input: q}

	// Fast path: already covered?
	res, err := cover.Check(q, a, s, opt.Cover)
	if err != nil {
		return nil, err
	}
	if res.Covered {
		dec.Verdict = Bounded
		dec.Witness = res.Analysis.Q
		dec.Cover = res
		return dec, nil
	}

	// Rewrite 1: FD chase with bound-1 constraints.
	cr, err := chase(q, a, s)
	if err != nil {
		return nil, err
	}
	cur := cr.Q
	if cr.Unsat {
		dec.Verdict = BoundedEmpty
		dec.Witness = cur
		dec.Rewrites = append(dec.Rewrites, "chase: derived contradiction (A-unsatisfiable)")
		return dec, nil
	}
	if cr.Changed {
		dec.Rewrites = append(dec.Rewrites, "chase: merged variables via bound-1 constraints")
	}

	// Rewrite 2: drop A-redundant atoms.
	cur, dropped, err := dropRedundantAtoms(cur, a, s, opt)
	if err != nil {
		return nil, err
	}
	dec.Rewrites = append(dec.Rewrites, dropped...)

	res, err = cover.Check(cur, a, s, opt.Cover)
	if err != nil {
		return nil, err
	}
	dec.Cover = res
	if res.Covered {
		dec.Verdict = Bounded
		dec.Witness = res.Analysis.Q
		return dec, nil
	}

	// Last resort: A-unsatisfiable queries are bounded via the empty plan.
	if opt.UseAContainment {
		sat, err := ainstance.Satisfiable(cur, a, s, opt.AInstance)
		if err == nil && !sat {
			dec.Verdict = BoundedEmpty
			dec.Witness = cur
			dec.Rewrites = append(dec.Rewrites, "A-satisfiability check: no A-instance exists")
			return dec, nil
		}
	}
	dec.Verdict = Unknown
	return dec, nil
}

// dropRedundantAtoms removes atoms whose deletion preserves A-equivalence.
// Removing a conjunct always relaxes (Q ⊑ Q-atom on all instances), so the
// test is Q-atom ⊑A Q: first by the classical Homomorphism Theorem (sound
// for any A), then optionally by A-containment.
func dropRedundantAtoms(q *cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (*cq.CQ, []string, error) {
	cur := q.DropDuplicateAtoms()
	var log []string
	for {
		removed := false
		for i := range cur.Atoms {
			cand := cur.Clone()
			atom := cand.Atoms[i]
			cand.Atoms = append(cand.Atoms[:i:i], cand.Atoms[i+1:]...)
			if err := cand.Validate(s); err != nil {
				continue // removal would break safety
			}
			ok := cq.Contains(cand, cur)
			if !ok && opt.UseAContainment {
				var cErr error
				ok, cErr = ainstance.Contained(cand, cur, a, s, opt.AInstance)
				if cErr != nil {
					ok = false // enumeration too large: keep the atom
				}
			}
			if ok {
				log = append(log, fmt.Sprintf("dropped A-redundant atom %s", atom))
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur, log, nil
		}
	}
}

// UCQDecision is the outcome for a union of CQs.
type UCQDecision struct {
	Verdict Verdict
	// Subs are the per-sub-query decisions (after rewriting).
	Subs []*Decision
	// Union is the covered-UCQ check over the rewritten sub-queries
	// (Lemma 3.6: bounded iff A-equivalent to a union of bounded subs).
	Union *cover.UCQResult
}

// DecideUCQ runs the checker on a UCQ following Lemma 3.6: rewrite each
// sub-query, then check that each is covered or dominated by covered ones.
func DecideUCQ(qs []*cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (*UCQDecision, error) {
	out := &UCQDecision{}
	var rewritten []*cq.CQ
	allEmpty := true
	for _, q := range qs {
		d, err := Decide(q, a, s, opt)
		if err != nil {
			return nil, err
		}
		out.Subs = append(out.Subs, d)
		if d.Verdict == BoundedEmpty {
			continue // contributes nothing; drop from the union
		}
		allEmpty = false
		w := d.Witness
		if w == nil {
			w = q
		}
		rewritten = append(rewritten, w)
	}
	if allEmpty {
		out.Verdict = BoundedEmpty
		return out, nil
	}
	ures, err := cover.CheckUCQ(rewritten, a, s, opt.Cover)
	if err != nil {
		return nil, err
	}
	out.Union = ures
	if ures.Covered {
		out.Verdict = Bounded
	} else {
		out.Verdict = Unknown
	}
	return out, nil
}
