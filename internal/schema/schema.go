// Package schema defines relational schemas: named relation schemas with
// fixed attribute lists, collected into a relational schema R.
//
// This mirrors Section 2 of the paper: "A relational schema R consists of a
// collection of relation schemas (R1, ..., Rn), where each relation schema
// Ri has a fixed set of attributes."
package schema

import (
	"fmt"
	"strings"
)

// Attribute names a column of a relation schema.
type Attribute string

// Relation is a single relation schema: a name and an ordered attribute list.
type Relation struct {
	Name  string
	Attrs []Attribute
}

// NewRelation builds a relation schema, validating that attribute names are
// nonempty and distinct.
func NewRelation(name string, attrs ...Attribute) (Relation, error) {
	if name == "" {
		return Relation{}, fmt.Errorf("schema: relation name must be nonempty")
	}
	seen := make(map[Attribute]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return Relation{}, fmt.Errorf("schema: relation %s has an empty attribute name", name)
		}
		if seen[a] {
			return Relation{}, fmt.Errorf("schema: relation %s repeats attribute %s", name, a)
		}
		seen[a] = true
	}
	return Relation{Name: name, Attrs: append([]Attribute(nil), attrs...)}, nil
}

// MustRelation is NewRelation that panics on error; for fixtures and tests.
func MustRelation(name string, attrs ...Attribute) Relation {
	r, err := NewRelation(name, attrs...)
	if err != nil {
		panic(err)
	}
	return r
}

// Arity returns the number of attributes.
func (r Relation) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of attribute a, or -1 if absent.
func (r Relation) AttrIndex(a Attribute) int {
	for i, b := range r.Attrs {
		if a == b {
			return i
		}
	}
	return -1
}

// HasAttrs reports whether every attribute in as belongs to r.
func (r Relation) HasAttrs(as []Attribute) bool {
	for _, a := range as {
		if r.AttrIndex(a) < 0 {
			return false
		}
	}
	return true
}

// Positions maps attributes to their column positions. It returns an error
// if any attribute is missing.
func (r Relation) Positions(as []Attribute) ([]int, error) {
	out := make([]int, len(as))
	for i, a := range as {
		p := r.AttrIndex(a)
		if p < 0 {
			return nil, fmt.Errorf("schema: relation %s has no attribute %s", r.Name, a)
		}
		out[i] = p
	}
	return out, nil
}

// String renders the schema declaration, e.g. "Accident(aid, district, date)".
func (r Relation) String() string {
	parts := make([]string, len(r.Attrs))
	for i, a := range r.Attrs {
		parts[i] = string(a)
	}
	return r.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Schema is a relational schema R: an ordered collection of relation schemas.
// The zero Schema is empty and ready to use.
type Schema struct {
	rels  map[string]Relation
	order []string
}

// New builds a schema from relation schemas, rejecting duplicates.
func New(rels ...Relation) (*Schema, error) {
	s := &Schema{}
	for _, r := range rels {
		if err := s.Add(r); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNew is New that panics on error; for fixtures and tests.
func MustNew(rels ...Relation) *Schema {
	s, err := New(rels...)
	if err != nil {
		panic(err)
	}
	return s
}

// Add inserts a relation schema. Adding a name twice is an error.
func (s *Schema) Add(r Relation) error {
	if s.rels == nil {
		s.rels = make(map[string]Relation)
	}
	if _, dup := s.rels[r.Name]; dup {
		return fmt.Errorf("schema: duplicate relation %s", r.Name)
	}
	s.rels[r.Name] = r
	s.order = append(s.order, r.Name)
	return nil
}

// Relation looks up a relation schema by name.
func (s *Schema) Relation(name string) (Relation, bool) {
	r, ok := s.rels[name]
	return r, ok
}

// Relations returns all relation schemas in insertion order.
func (s *Schema) Relations() []Relation {
	out := make([]Relation, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.rels[n])
	}
	return out
}

// Len returns the number of relation schemas.
func (s *Schema) Len() int { return len(s.order) }

// Size is |R| as used in the paper's complexity statements: the total
// number of attributes across all relation schemas plus the relation count.
func (s *Schema) Size() int {
	n := len(s.order)
	for _, name := range s.order {
		n += len(s.rels[name].Attrs)
	}
	return n
}

// String renders one relation declaration per line.
func (s *Schema) String() string {
	var b strings.Builder
	for i, name := range s.order {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(s.rels[name].String())
	}
	return b.String()
}
