package schema

import (
	"strings"
	"testing"
)

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation(""); err == nil {
		t.Error("empty relation name must be rejected")
	}
	if _, err := NewRelation("R", "A", "A"); err == nil {
		t.Error("duplicate attribute must be rejected")
	}
	if _, err := NewRelation("R", "A", ""); err == nil {
		t.Error("empty attribute must be rejected")
	}
	r, err := NewRelation("R", "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if r.Arity() != 2 {
		t.Errorf("arity = %d, want 2", r.Arity())
	}
}

func TestAttrIndexAndPositions(t *testing.T) {
	r := MustRelation("Vehicle", "vid", "driver", "age")
	if got := r.AttrIndex("driver"); got != 1 {
		t.Errorf("AttrIndex(driver) = %d, want 1", got)
	}
	if got := r.AttrIndex("nope"); got != -1 {
		t.Errorf("AttrIndex(nope) = %d, want -1", got)
	}
	pos, err := r.Positions([]Attribute{"age", "vid"})
	if err != nil {
		t.Fatal(err)
	}
	if pos[0] != 2 || pos[1] != 0 {
		t.Errorf("Positions = %v", pos)
	}
	if _, err := r.Positions([]Attribute{"ghost"}); err == nil {
		t.Error("missing attribute must error")
	}
}

func TestHasAttrs(t *testing.T) {
	r := MustRelation("R", "A", "B", "C")
	if !r.HasAttrs([]Attribute{"A", "C"}) {
		t.Error("HasAttrs(A,C) should be true")
	}
	if r.HasAttrs([]Attribute{"A", "D"}) {
		t.Error("HasAttrs(A,D) should be false")
	}
	if !r.HasAttrs(nil) {
		t.Error("HasAttrs(nil) should be true (empty X in R(∅→Y,N))")
	}
}

func TestSchemaAddAndLookup(t *testing.T) {
	s := MustNew(
		MustRelation("Accident", "aid", "district", "date"),
		MustRelation("Casualty", "cid", "aid", "class", "vid"),
	)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, ok := s.Relation("Accident"); !ok {
		t.Error("Accident should resolve")
	}
	if _, ok := s.Relation("Vehicle"); ok {
		t.Error("Vehicle should not resolve")
	}
	if err := s.Add(MustRelation("Accident", "x")); err == nil {
		t.Error("duplicate relation must be rejected")
	}
}

func TestSchemaOrderAndSize(t *testing.T) {
	s := MustNew(MustRelation("B", "x"), MustRelation("A", "y", "z"))
	rels := s.Relations()
	if rels[0].Name != "B" || rels[1].Name != "A" {
		t.Errorf("insertion order not preserved: %v", rels)
	}
	// |R| = 2 relations + 3 attributes.
	if s.Size() != 5 {
		t.Errorf("Size = %d, want 5", s.Size())
	}
}

func TestStringRendering(t *testing.T) {
	s := MustNew(MustRelation("R", "A", "B"))
	if got := s.String(); !strings.Contains(got, "R(A, B)") {
		t.Errorf("String() = %q", got)
	}
}

func TestZeroSchemaUsable(t *testing.T) {
	var s Schema
	if s.Len() != 0 || s.Size() != 0 {
		t.Error("zero schema should be empty")
	}
	if err := s.Add(MustRelation("R", "A")); err != nil {
		t.Fatalf("Add on zero schema: %v", err)
	}
	if _, ok := s.Relation("R"); !ok {
		t.Error("R should resolve after Add")
	}
}
