package load_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/load"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/workload"
)

func TestRoundTripAccidents(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 3, AccidentsPerDay: 10, MaxVehicles: 3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := load.SaveInstance(acc.Instance, dir); err != nil {
		t.Fatal(err)
	}
	got, err := load.LoadInstance(acc.Schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != acc.Instance.Size() {
		t.Fatalf("round trip size %d, want %d", got.Size(), acc.Instance.Size())
	}
	for _, rs := range acc.Schema.Relations() {
		want := acc.Instance.Relation(rs.Name)
		have := got.Relation(rs.Name)
		if have.Len() != want.Len() {
			t.Errorf("%s: %d vs %d tuples", rs.Name, have.Len(), want.Len())
		}
		for _, tup := range want.Tuples() {
			if !have.Contains(tup) {
				t.Errorf("%s: missing tuple %v after round trip", rs.Name, tup)
			}
		}
	}
}

func TestValueEncodingEdgeCases(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A"))
	d, err := load.LoadInstance(s, writeTSV(t, "R.tsv", "A\n42\ns:42\nplain\ns:tab\\there\n-7\n"))
	if err != nil {
		t.Fatal(err)
	}
	r := d.Relation("R")
	cases := []value.Value{
		value.NewInt(42),
		value.NewString("42"),
		value.NewString("plain"),
		value.NewString("tab\there"),
		value.NewInt(-7),
	}
	for _, c := range cases {
		if !r.Contains([]value.Value{c}) {
			t.Errorf("missing %v after load", c)
		}
	}
	if r.Len() != len(cases) {
		t.Errorf("len = %d", r.Len())
	}
}

func writeTSV(t *testing.T, name, content string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestLoadErrors(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	cases := []struct {
		name, content, want string
	}{
		{"missing header", "", "missing header"},
		{"wrong header width", "A\n", "header has 1 columns"},
		{"wrong header name", "A\tC\n", `header column 1 is "C"`},
		{"ragged row", "A\tB\n1\n", "1 fields, want 2"},
		{"bad escape", "A\tB\n1\ts:bad\\q\n", "unknown escape"},
		{"dangling escape", "A\tB\n1\ts:bad\\\n", "dangling escape"},
	}
	for _, c := range cases {
		dir := writeTSV(t, "R.tsv", c.content)
		_, err := load.LoadInstance(s, dir)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q should mention %q", c.name, err, c.want)
		}
	}
	// Missing file entirely.
	if _, err := load.LoadInstance(s, t.TempDir()); err == nil {
		t.Error("missing relation file must error")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(raw string, n int64) bool {
		for _, v := range []value.Value{value.NewString(raw), value.NewInt(n)} {
			cell := load.EncodeValue(v)
			if strings.ContainsAny(cell, "\t\n") {
				return false // must be TSV-safe
			}
			back, err := load.DecodeValue(cell)
			if err != nil || back != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
