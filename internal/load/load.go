// Package load persists database instances as TSV files, one file per
// relation, so users can bring their own data to the engine (the paper's
// experiments load the published UK accident tables the same way).
//
// Format: <dir>/<Relation>.tsv with a header row naming the attributes in
// schema order, then one row per tuple. Values are typed by shape: a field
// of digits (with optional sign) is an integer, anything else a string.
// Tabs and newlines inside string values are escaped as \t, \n, and \\.
package load

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

// SaveInstance writes every relation of d into dir (created if needed).
func SaveInstance(d *data.Instance, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("load: %w", err)
	}
	for _, rs := range d.Schema.Relations() {
		if err := saveRelation(d.Relation(rs.Name), filepath.Join(dir, rs.Name+".tsv")); err != nil {
			return err
		}
	}
	return nil
}

func saveRelation(r *data.Relation, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	header := make([]string, len(r.Schema.Attrs))
	for i, a := range r.Schema.Attrs {
		header[i] = string(a)
	}
	if _, err := w.WriteString(strings.Join(header, "\t") + "\n"); err != nil {
		return err
	}
	var t data.Tuple
	cells := make([]string, len(r.Schema.Attrs))
	for ri := 0; ri < r.Len(); ri++ {
		t = r.AppendRow(t, ri)
		for i, v := range t {
			cells[i] = EncodeValue(v)
		}
		if _, err := w.WriteString(strings.Join(cells, "\t") + "\n"); err != nil {
			return err
		}
	}
	return w.Flush()
}

// LoadInstance reads an instance of s from dir. Every relation of the
// schema must have its TSV file; headers are validated against the schema.
func LoadInstance(s *schema.Schema, dir string) (*data.Instance, error) {
	d := data.NewInstance(s)
	for _, rs := range s.Relations() {
		path := filepath.Join(dir, rs.Name+".tsv")
		if err := loadRelation(d, rs, path); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func loadRelation(d *data.Instance, rs schema.Relation, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return fmt.Errorf("load: %s: %w", path, err)
		}
		return fmt.Errorf("load: %s: missing header", path)
	}
	lineNo++
	header := strings.Split(sc.Text(), "\t")
	if len(header) != rs.Arity() {
		return fmt.Errorf("load: %s: header has %d columns, schema wants %d", path, len(header), rs.Arity())
	}
	for i, h := range header {
		if schema.Attribute(h) != rs.Attrs[i] {
			return fmt.Errorf("load: %s: header column %d is %q, schema wants %q", path, i, h, rs.Attrs[i])
		}
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		cells := strings.Split(line, "\t")
		if len(cells) != rs.Arity() {
			return fmt.Errorf("load: %s:%d: %d fields, want %d", path, lineNo, len(cells), rs.Arity())
		}
		row := make([]value.Value, len(cells))
		for i, c := range cells {
			v, err := DecodeValue(c)
			if err != nil {
				return fmt.Errorf("load: %s:%d: %w", path, lineNo, err)
			}
			row[i] = v
		}
		if err := d.Insert(rs.Name, row...); err != nil {
			return fmt.Errorf("load: %s:%d: %w", path, lineNo, err)
		}
	}
	return sc.Err()
}

// EncodeValue renders a value for a TSV cell. Integers are bare digits;
// strings are prefixed with "s:" when they could be mistaken for integers
// or contain escapes, otherwise written verbatim with escaping. It is the
// cell codec shared by instance TSV files and live-update delta files.
func EncodeValue(v value.Value) string {
	switch v.Kind() {
	case value.Int:
		return fmt.Sprintf("%d", v.Int())
	case value.String:
		s := v.Str()
		escaped := escape(s)
		if looksInt(s) || strings.HasPrefix(s, "s:") || escaped != s {
			return "s:" + escaped
		}
		return s
	default:
		return "s:"
	}
}

// DecodeValue parses a TSV cell written by EncodeValue.
func DecodeValue(cell string) (value.Value, error) {
	if strings.HasPrefix(cell, "s:") {
		s, err := unescape(cell[2:])
		if err != nil {
			return value.Value{}, err
		}
		return value.NewString(s), nil
	}
	if looksInt(cell) {
		// strconv, not fmt.Sscanf: this runs once per cell on the load
		// AND recovery paths, and Sscanf's scan-state machinery is ~50x
		// the cost of a direct parse.
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad integer %q", cell)
		}
		return value.NewInt(n), nil
	}
	return value.NewString(cell), nil
}

func looksInt(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '-' || s[0] == '+' {
		if len(s) == 1 {
			return false
		}
		i = 1
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// escape works on BYTES, not runes: values are arbitrary byte strings,
// and a rune loop would silently rewrite invalid UTF-8 to U+FFFD —
// corrupting the value and breaking the encode/decode bijection (found
// by FuzzReadDeltaTSV). Carriage returns are escaped alongside tabs and
// newlines because bufio.ScanLines strips a trailing \r from each line.
func escape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\t':
			b.WriteString(`\t`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unescape(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i == len(s) {
			return "", fmt.Errorf("dangling escape in %q", s)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		default:
			return "", fmt.Errorf("unknown escape \\%c in %q", s[i], s)
		}
	}
	return b.String(), nil
}
