// Package index implements the hash indices that back access constraints.
//
// An access constraint R(X -> Y, N) requires "an index on X for Y that,
// given an X-value ā, retrieves D_Y(X = ā)". Index is exactly that: it maps
// each X-value to the set of distinct Y-projections of matching tuples.
//
// Indices support incremental maintenance: Insert and Delete keep the
// buckets exact under tuple-level updates without rebuilding, tracking the
// multiplicity of each (X, Y) pair so a Y-projection disappears only when
// its last witnessing tuple does. Clone produces an independently
// maintainable copy whose mutations never touch the original — the
// building block for snapshot-isolated index versions.
//
// Buckets are flat: one contiguous []value.Value per X-group holding the
// Y-projections back to back (stride = |Y|), addressed through an interned
// slot id instead of a map of boxed tuple slices. Fetches hand out an
// immutable Bucket view over that array — callers read cells (At), encode
// row keys (AppendKeyOf) or fill their own buffers (AppendRow), and cannot
// reach the backing store to corrupt COW-shared snapshot state.
package index

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

// Bucket is the immutable fetch result D_Y(X = ā): n distinct
// Y-projections of stride cells each, in canonical (key-sorted) order,
// viewed over the index's flat backing array. The zero Bucket is empty.
// Views are valid for the lifetime of the index version they came from;
// the copy-on-write discipline (mutate only unpublished clones) keeps
// published versions frozen.
type Bucket struct {
	vals   []value.Value
	stride int
	n      int
}

// Len returns the number of Y-projections in the bucket.
func (b Bucket) Len() int { return b.n }

// At returns cell j of projection i.
//
//bevet:hotpath
func (b Bucket) At(i, j int) value.Value { return b.vals[i*b.stride+j] }

// AppendKeyOf appends the injective key encoding of projection i to dst.
//
//bevet:hotpath
func (b Bucket) AppendKeyOf(dst []byte, i int) []byte {
	base := i * b.stride
	for j := 0; j < b.stride; j++ {
		dst = value.AppendValueKey(dst, b.vals[base+j])
	}
	return dst
}

// AppendRow materializes projection i into dst (reset to length 0 first)
// and returns it, so a fetch loop reuses one caller-owned buffer.
//
//bevet:hotpath
func (b Bucket) AppendRow(dst data.Tuple, i int) data.Tuple {
	dst = dst[:0]
	base := i * b.stride
	for j := 0; j < b.stride; j++ {
		dst = append(dst, b.vals[base+j])
	}
	return dst
}

// Tuples materializes the bucket as freshly allocated tuples — the
// convenience (and test) surface; hot paths iterate with At/AppendRow.
func (b Bucket) Tuples() []data.Tuple {
	out := make([]data.Tuple, b.n)
	for i := range out {
		out[i] = b.AppendRow(make(data.Tuple, 0, b.stride), i)
	}
	return out
}

// MergeBuckets K-way-merges canonically sorted buckets of equal stride,
// deduplicating Y-projections that distinct tuples on different shards
// share. The result is in canonical order with fresh backing —
// byte-identical to the single-node bucket over the union of the shards'
// tuples. It is the cross-shard scatter-gather merge of internal/shard.
func MergeBuckets(parts []Bucket) Bucket {
	if len(parts) == 0 {
		return Bucket{}
	}
	stride := parts[0].stride
	total := 0
	for _, p := range parts {
		total += p.n
	}
	out := Bucket{vals: make([]value.Value, 0, total*stride), stride: stride}
	pos := make([]int, len(parts))
	keys := make([][]byte, len(parts))
	for i, p := range parts {
		if p.n > 0 {
			keys[i] = p.AppendKeyOf(nil, 0)
		}
	}
	for {
		best := -1
		for i, p := range parts {
			if pos[i] >= p.n {
				continue
			}
			if best < 0 || bytes.Compare(keys[i], keys[best]) < 0 {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		bk := keys[best]
		out.vals = append(out.vals, parts[best].vals[pos[best]*stride:(pos[best]+1)*stride]...)
		out.n++
		// Advance every part past bk: within a shard projections are
		// distinct, so at most the head of each part equals it. best
		// advances last — bk aliases its key buffer.
		for i, p := range parts {
			if i == best || pos[i] >= p.n || !bytes.Equal(keys[i], bk) {
				continue
			}
			pos[i]++
			if pos[i] < p.n {
				keys[i] = p.AppendKeyOf(keys[i][:0], pos[i])
			}
		}
		pos[best]++
		if pos[best] < parts[best].n {
			keys[best] = parts[best].AppendKeyOf(keys[best][:0], pos[best])
		}
	}
}

// NewBucket wraps cells — len(cells)/stride Y-projections laid out back
// to back — as an immutable Bucket view. The caller must supply the
// projections already in canonical (key-sorted) order and must not
// mutate cells afterwards; the bucket aliases it. This is the decode
// seam for wire transports (internal/cluster) that receive a remote
// fetch result and need to re-enter the Bucket contract, e.g. to feed
// MergeBuckets.
func NewBucket(cells []value.Value, stride int) Bucket {
	if stride <= 0 || len(cells) == 0 {
		return Bucket{}
	}
	return Bucket{vals: cells, stride: stride, n: len(cells) / stride}
}

// bucket is one X-group's storage slot: n Y-projections of stride cells,
// flattened back to back in vals in canonical order.
type bucket struct {
	vals []value.Value
	n    int
}

// Index is a hash index on attributes X for attributes Y over one relation
// instance. Buckets hold distinct Y-projections (set semantics), so the
// bucket size for key ā is exactly |D_Y(X = ā)| from the paper.
//
// Buckets are kept in canonical order: Y-projections sorted by their
// injective key encoding. This makes fetch results a pure function of the
// SET of tuples in the relation — independent of insertion order, of the
// delete/insert history, and (crucially for internal/shard) of how the
// relation is partitioned: merging the per-shard buckets of a
// hash-partitioned relation in key order reproduces the exact bucket a
// single-node index over the whole relation would serve.
type Index struct {
	Rel  string
	X, Y []schema.Attribute

	xpos, ypos []int
	// ids interns each X-key to its bucket slot. Slots are never reused:
	// deleting a group's last projection removes its ids entry and leaves
	// an empty tombstone slot behind (bounded by the version's historical
	// group count; bulk rebuilds start fresh).
	ids     map[value.Key]uint32
	buckets []bucket
	// counts tracks, per (X, Y) pair, how many relation tuples project to
	// it; a bucket entry is removed when its count reaches zero. The map
	// stores ONLY multiplicities >= 2: a projection present in its bucket
	// with no counts entry has multiplicity 1. Multiplicity 1 is the
	// overwhelmingly common case, so the implicit representation keeps the
	// map (and its per-pair concatenated keys) near-empty — Clone copies
	// almost nothing and checkpoint restore skips the map entirely.
	counts map[value.Key]int
	// owned says which bucket slots this index may mutate in place. nil
	// means all of them (a freshly built index); after a Clone, both
	// sides own nothing and re-copy a bucket's cells on first write, so
	// mutations on either side never reach the other. Slots appended
	// after the clone (>= len(owned)) are owned by construction.
	owned []bool

	// pkBuf/cmpBuf are writer-only key-encoding scratch for Insert and
	// Delete; the copy-on-write discipline keeps them off concurrent
	// read paths.
	pkBuf, cmpBuf []byte
}

// ownsBucket reports whether the bucket in slot may be mutated in place.
func (ix *Index) ownsBucket(slot uint32) bool {
	return ix.owned == nil || int(slot) >= len(ix.owned) || ix.owned[slot]
}

// claimBucket marks the bucket in slot as owned (called after copying it).
func (ix *Index) claimBucket(slot uint32) {
	if ix.owned != nil && int(slot) < len(ix.owned) {
		ix.owned[slot] = true
	}
}

// New constructs an empty index on X for Y over relations shaped like rs.
// Empty X is allowed (the paper's R(∅ -> Y, N) form): all tuples share
// the single empty key.
func New(rs schema.Relation, x, y []schema.Attribute) (*Index, error) {
	xpos, err := rs.Positions(x)
	if err != nil {
		return nil, fmt.Errorf("index: bad X: %w", err)
	}
	ypos, err := rs.Positions(y)
	if err != nil {
		return nil, fmt.Errorf("index: bad Y: %w", err)
	}
	return &Index{
		Rel:    rs.Name,
		X:      append([]schema.Attribute(nil), x...),
		Y:      append([]schema.Attribute(nil), y...),
		xpos:   xpos,
		ypos:   ypos,
		ids:    make(map[value.Key]uint32),
		counts: make(map[value.Key]int),
	}, nil
}

// Grow presizes an EMPTY index for buckets X-groups holding pairs
// distinct (X, Y) pairs in total, so a bulk restore (InstallBucket per
// bucket) fills the structures without incremental rehashing. Go maps
// only take a size hint at make time, hence the replace-while-empty rule;
// on a non-empty index Grow is a no-op rather than an error, since it is
// purely an optimization hint. The counts map is left alone: it holds
// only the (rare) multiplicity >= 2 pairs, so pairs would oversize it.
func (ix *Index) Grow(buckets, pairs int) {
	if len(ix.ids) != 0 {
		return
	}
	ix.ids = make(map[value.Key]uint32, buckets)
	ix.buckets = make([]bucket, 0, buckets)
	_ = pairs
}

// Build constructs the index on X for Y over r. Projections are appended
// to their flat buckets during one columnar scan (duplicates included),
// then each bucket is sorted and compacted once at the end: per-tuple
// sorted insertion would cost O(g) shifts and O(log g) key re-encodings
// per tuple on a group of size g — quadratic in g before an oversized
// group is even rejected by validation — while append-then-sort is
// O(g log g) total.
func Build(r *data.Relation, x, y []schema.Attribute) (*Index, error) {
	idx, err := New(r.Schema, x, y)
	if err != nil {
		return nil, err
	}
	var kbuf []byte
	for i := 0; i < r.Len(); i++ {
		kbuf = r.AppendKeyAt(kbuf[:0], i, idx.xpos)
		slot, ok := idx.ids[value.Key(kbuf)]
		if !ok {
			slot = uint32(len(idx.buckets))
			idx.buckets = append(idx.buckets, bucket{})
			idx.ids[value.Key(string(kbuf))] = slot
		}
		b := &idx.buckets[slot]
		for _, c := range idx.ypos {
			b.vals = append(b.vals, r.ValueAt(i, c))
		}
		b.n++
	}
	idx.finalize()
	return idx, nil
}

// finalize restores the canonical per-bucket order after a bulk
// append-only build, collapsing duplicate (X, Y) pairs into multiplicity
// counts.
func (ix *Index) finalize() {
	stride := len(ix.ypos)
	for k, slot := range ix.ids {
		b := &ix.buckets[slot]
		if stride == 0 {
			// Empty Y: every tuple of the group projects to the empty
			// tuple; the bucket is that single projection with the group's
			// tuple count as its multiplicity.
			if b.n >= 2 {
				ix.counts[pairKey(k, "")] = b.n
			}
			b.n = 1
			continue
		}
		if b.n < 2 {
			continue
		}
		keys := make([]value.Key, b.n)
		for i := range keys {
			keys[i] = value.KeyOf(b.vals[i*stride : (i+1)*stride]...)
		}
		sort.Sort(&flatBucket{vals: b.vals, keys: keys, stride: stride})
		w := 0
		for i := 0; i < b.n; {
			j := i
			for j < b.n && keys[j] == keys[i] {
				j++
			}
			if run := j - i; run >= 2 {
				ix.counts[pairKey(k, keys[i])] = run
			}
			if w != i {
				copy(b.vals[w*stride:(w+1)*stride], b.vals[i*stride:(i+1)*stride])
			}
			w++
			i = j
		}
		b.vals = b.vals[: w*stride : w*stride]
		b.n = w
	}
}

// flatBucket sorts a flat bucket by precomputed projection keys.
type flatBucket struct {
	vals   []value.Value
	keys   []value.Key
	stride int
}

func (s *flatBucket) Len() int           { return len(s.keys) }
func (s *flatBucket) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *flatBucket) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	vi, vj := s.vals[i*s.stride:], s.vals[j*s.stride:]
	for c := 0; c < s.stride; c++ {
		vi[c], vj[c] = vj[c], vi[c]
	}
}

// pairKey is the injective encoding of (X-key, Y-projection-key).
//
// Injectivity holds even though the separator byte 0x00 can occur inside
// an encoded key: valid key encodings of a FIXED arity are prefix-free.
// A key decodes deterministically left to right — each value reads its
// tag byte, then (for ints) one varint or (for strings) one length
// varint plus exactly that many payload bytes — so decoding |X| values
// consumes an unambiguous number of bytes with nothing left over. If
// k1+SEP+p1 == k2+SEP+p2 with |k| covering the same arity X on both
// sides, decoding X values from the equal concatenations consumes the
// same prefix, hence k1 == k2 and (skipping SEP) p1 == p2. Within one
// index every stored k has arity |X| and every pk arity |Y|, so distinct
// (k, pk) pairs never collide — FuzzPairKey in index_test.go asserts
// exactly this. (The separator is redundant given prefix-freeness; it is
// kept because the byte layout reaches the checkpoint-adjacent counts
// map and changing it buys nothing.)
func pairKey(k, pk value.Key) value.Key { return k + "\x00" + pk }

// cmpProj compares projection i of b (encoded into the cmpBuf scratch)
// with the encoded projection key pk.
func (ix *Index) cmpProj(b *bucket, i int, pk []byte) int {
	stride := len(ix.ypos)
	ix.cmpBuf = ix.cmpBuf[:0]
	for j := 0; j < stride; j++ {
		ix.cmpBuf = value.AppendValueKey(ix.cmpBuf, b.vals[i*stride+j])
	}
	return bytes.Compare(ix.cmpBuf, pk)
}

// search finds the canonical position of pk in b: the first index whose
// projection key is >= pk, and whether it is an exact match.
func (ix *Index) search(b *bucket, pk []byte) (int, bool) {
	lo, hi := 0, b.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.cmpProj(b, mid, pk) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < b.n && ix.cmpProj(b, lo, pk) == 0
}

// Insert maintains the index for one inserted tuple, returning the
// tuple's X-key and the bucket size after the insert (so callers can
// check a cardinality bound without scanning all groups). Inserting a
// tuple whose (X, Y) pair is already present only bumps its multiplicity.
// The caller is responsible for set semantics at the relation level:
// Insert assumes t was a fresh relation tuple. The bucket stays in
// canonical (key-sorted) order.
func (ix *Index) Insert(t data.Tuple) (value.Key, int) {
	k := value.KeyOfAt(t, ix.xpos)
	ix.pkBuf = value.AppendKeyAt(ix.pkBuf[:0], t, ix.ypos)
	slot, ok := ix.ids[k]
	if !ok {
		slot = uint32(len(ix.buckets))
		ix.buckets = append(ix.buckets, bucket{})
		ix.ids[k] = slot
	}
	b := &ix.buckets[slot]
	at, found := ix.search(b, ix.pkBuf)
	if found {
		// Pair already present: bump its multiplicity (implicit 1 when
		// absent from counts).
		dk := pairKey(k, value.Key(string(ix.pkBuf)))
		n := ix.counts[dk]
		if n == 0 {
			n = 1
		}
		ix.counts[dk] = n + 1
		return k, b.n
	}
	stride := len(ix.ypos)
	if !ix.ownsBucket(slot) {
		// Copy-on-write: this bucket's backing array is shared with a
		// pre-clone version whose readers still hold it.
		nv := make([]value.Value, len(b.vals), len(b.vals)+stride)
		copy(nv, b.vals)
		b.vals = nv
		ix.claimBucket(slot)
	}
	for j := 0; j < stride; j++ {
		b.vals = append(b.vals, value.Value{})
	}
	copy(b.vals[(at+1)*stride:], b.vals[at*stride:])
	for j := 0; j < stride; j++ {
		b.vals[at*stride+j] = t[ix.ypos[j]]
	}
	b.n++
	return k, b.n
}

// Delete maintains the index for one deleted tuple, returning the tuple's
// X-key and the bucket size after the delete. The Y-projection leaves the
// bucket only when no other relation tuple projects to it. Deleting a
// tuple that was never inserted is a no-op.
func (ix *Index) Delete(t data.Tuple) (value.Key, int) {
	k := value.KeyOfAt(t, ix.xpos)
	slot, ok := ix.ids[k]
	if !ok {
		return k, 0
	}
	ix.pkBuf = value.AppendKeyAt(ix.pkBuf[:0], t, ix.ypos)
	b := &ix.buckets[slot]
	at, found := ix.search(b, ix.pkBuf)
	if !found {
		// Pair was never inserted; deleting it is a no-op.
		return k, b.n
	}
	dk := pairKey(k, value.Key(string(ix.pkBuf)))
	if n, ok := ix.counts[dk]; ok { // multiplicity >= 2
		if n > 2 {
			ix.counts[dk] = n - 1
		} else {
			delete(ix.counts, dk) // back to the implicit 1
		}
		return k, b.n
	}
	// Multiplicity 1: the projection leaves the bucket.
	stride := len(ix.ypos)
	if !ix.ownsBucket(slot) {
		nv := make([]value.Value, len(b.vals)-stride)
		copy(nv, b.vals[:at*stride])
		copy(nv[at*stride:], b.vals[(at+1)*stride:])
		b.vals = nv
		ix.claimBucket(slot)
	} else {
		copy(b.vals[at*stride:], b.vals[(at+1)*stride:])
		b.vals = b.vals[: len(b.vals)-stride : len(b.vals)-stride]
	}
	b.n--
	if b.n == 0 {
		// Tombstone the slot: the group is gone, the slot id is retired.
		delete(ix.ids, k)
		b.vals = nil
		return k, 0
	}
	return k, b.n
}

// Clone returns a copy of ix that can be maintained incrementally while
// readers keep using ix: mutations on either side never reach the other.
// Bucket cell arrays are shared until first write — Clone renounces
// in-place mutation rights on BOTH sides, so each re-copies a bucket the
// first time it changes it.
func (ix *Index) Clone() *Index {
	cp := &Index{
		Rel:     ix.Rel,
		X:       ix.X,
		Y:       ix.Y,
		xpos:    ix.xpos,
		ypos:    ix.ypos,
		ids:     make(map[value.Key]uint32, len(ix.ids)),
		buckets: append([]bucket(nil), ix.buckets...),
		counts:  make(map[value.Key]int, len(ix.counts)),
		owned:   make([]bool, len(ix.buckets)),
	}
	for k, slot := range ix.ids {
		cp.ids[k] = slot
	}
	for dk, n := range ix.counts {
		cp.counts[dk] = n
	}
	ix.owned = make([]bool, len(ix.buckets))
	return cp
}

// Dump visits every bucket in sorted X-key order, with projections in
// canonical order and, aligned with them, each projection's Key and the
// multiplicity of each (X, Y) pair — the complete serializable state of
// the index. It is the checkpoint-writing hook of internal/durable: Dump
// plus InstallBucket round-trips an index exactly, so recovery restores
// buckets verbatim instead of re-running Build's scan-and-sort. The
// projection keys are surfaced so the checkpoint codec can serialize
// tuples AS their keys without re-encoding. It stops at the first error
// f returns. Slices passed to f are shared (the projections view the flat
// bucket storage); f must not mutate or retain them past the call.
func (ix *Index) Dump(f func(k value.Key, projs []data.Tuple, projKeys []value.Key, counts []int) error) error {
	stride := len(ix.ypos)
	counts := make([]int, 0, 16)
	projKeys := make([]value.Key, 0, 16)
	projs := make([]data.Tuple, 0, 16)
	for _, k := range ix.Keys() {
		b := &ix.buckets[ix.ids[k]]
		counts = counts[:0]
		projKeys = projKeys[:0]
		projs = projs[:0]
		for i := 0; i < b.n; i++ {
			proj := data.Tuple(b.vals[i*stride : (i+1)*stride : (i+1)*stride])
			pk := value.KeyOf(proj...)
			projs = append(projs, proj)
			projKeys = append(projKeys, pk)
			n := ix.counts[pairKey(k, pk)]
			if n == 0 {
				n = 1 // implicit multiplicity
			}
			counts = append(counts, n)
		}
		if err := f(k, projs, projKeys, counts); err != nil {
			return err
		}
	}
	return nil
}

// InstallBucket installs one serialized bucket into a fresh index (built
// with New) — the recovery fast path: no per-tuple canonical-position
// search, no end-of-build sort, no projection-key re-encode. projs must
// already be in canonical (strictly ascending projection-key) order with
// their keys in projKeys and multiplicities in counts; all three come
// from a Dump of the index being restored, and projKeys[i] = projs[i].Key()
// is the caller's contract (the checkpoint codec decodes each projection
// FROM its key, so the correspondence holds by construction). The bucket
// must not already be present. The projections' cells are copied into the
// index's flat storage; projs itself is not retained.
func (ix *Index) InstallBucket(k value.Key, projs []data.Tuple, projKeys []value.Key, counts []int) error {
	if len(projs) == 0 || len(projs) != len(counts) || len(projs) != len(projKeys) {
		return fmt.Errorf("index: bucket of %d projections with %d keys, %d counts", len(projs), len(projKeys), len(counts))
	}
	if _, ok := ix.ids[k]; ok {
		return fmt.Errorf("index: bucket %q installed twice", string(k))
	}
	stride := len(ix.ypos)
	prev := value.Key("")
	for i, proj := range projs {
		if len(proj) != stride {
			return fmt.Errorf("index: projection arity %d, want %d", len(proj), stride)
		}
		if counts[i] < 1 {
			return fmt.Errorf("index: projection multiplicity %d", counts[i])
		}
		pk := projKeys[i]
		if i > 0 && pk <= prev {
			return fmt.Errorf("index: bucket not in canonical order")
		}
		prev = pk
		if counts[i] > 1 {
			ix.counts[pairKey(k, pk)] = counts[i]
		}
	}
	flat := make([]value.Value, 0, len(projs)*stride)
	for _, proj := range projs {
		flat = append(flat, proj...)
	}
	slot := uint32(len(ix.buckets))
	ix.buckets = append(ix.buckets, bucket{vals: flat, n: len(projs)})
	ix.ids[k] = slot
	return nil
}

// InstallBucketFlat is InstallBucket for restorers that decode
// projections straight into stride-aligned flat storage: cells holds the
// bucket's projections back to back (projection i at cells[i*stride :
// (i+1)*stride]), and the index takes ownership of cells instead of
// copying it — the checkpoint decoder carves all buckets of a section
// out of one arena, so a restore costs one cell allocation per section,
// not one per bucket. Ordering, multiplicity and arity validation match
// InstallBucket exactly.
func (ix *Index) InstallBucketFlat(k value.Key, cells []value.Value, projKeys []value.Key, counts []int) error {
	stride := len(ix.ypos)
	if len(projKeys) == 0 || len(projKeys) != len(counts) || len(cells) != len(projKeys)*stride {
		return fmt.Errorf("index: flat bucket of %d cells with %d keys, %d counts (stride %d)", len(cells), len(projKeys), len(counts), stride)
	}
	if _, ok := ix.ids[k]; ok {
		return fmt.Errorf("index: bucket %q installed twice", string(k))
	}
	prev := value.Key("")
	for i, pk := range projKeys {
		if counts[i] < 1 {
			return fmt.Errorf("index: projection multiplicity %d", counts[i])
		}
		if i > 0 && pk <= prev {
			return fmt.Errorf("index: bucket not in canonical order")
		}
		prev = pk
		if counts[i] > 1 {
			ix.counts[pairKey(k, pk)] = counts[i]
		}
	}
	slot := uint32(len(ix.buckets))
	ix.buckets = append(ix.buckets, bucket{vals: cells[:len(cells):len(cells)], n: len(projKeys)})
	ix.ids[k] = slot
	return nil
}

// view builds the immutable fetch view of one storage slot.
//
//bevet:hotpath
func (ix *Index) view(slot uint32) Bucket {
	b := &ix.buckets[slot]
	stride := len(ix.ypos)
	return Bucket{vals: b.vals[: b.n*stride : b.n*stride], stride: stride, n: b.n}
}

// FetchBytes returns the distinct Y-projections D_Y(X = ā) for the
// encoded X-key held in k — the hot-path fetch: the caller encodes keys
// into a reused scratch buffer and the map probe copies nothing.
//
//bevet:hotpath
func (ix *Index) FetchBytes(k []byte) Bucket {
	slot, ok := ix.ids[value.Key(k)]
	if !ok {
		return Bucket{stride: len(ix.ypos)}
	}
	return ix.view(slot)
}

// FetchKey is FetchBytes for a materialized key.
func (ix *Index) FetchKey(k value.Key) Bucket {
	slot, ok := ix.ids[k]
	if !ok {
		return Bucket{stride: len(ix.ypos)}
	}
	return ix.view(slot)
}

// Fetch returns D_Y(X = ā) for the X-value ā.
func (ix *Index) Fetch(xvals []value.Value) Bucket {
	return ix.FetchKey(value.KeyOf(xvals...))
}

// MaxGroup returns the largest bucket size: max over ā of |D_Y(X = ā)|.
// This is the quantity a cardinality constraint bounds.
func (ix *Index) MaxGroup() int {
	m := 0
	for _, slot := range ix.ids {
		if n := ix.buckets[slot].n; n > m {
			m = n
		}
	}
	return m
}

// Groups returns the number of distinct X-values present.
func (ix *Index) Groups() int { return len(ix.ids) }

// Keys returns the distinct X-keys present, sorted; mainly for tests and
// diagnostics that compare two indices.
func (ix *Index) Keys() []value.Key {
	out := make([]value.Key, 0, len(ix.ids))
	for k := range ix.ids {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Buckets calls f for every (X-key, bucket) pair, in unspecified key
// order, stopping early when f returns false. Buckets are immutable views
// in canonical projection-key order. It is the bulk-read hook
// coordinators use to merge per-shard group sizes without materializing
// sorted key lists.
func (ix *Index) Buckets(f func(k value.Key, b Bucket) bool) {
	for k, slot := range ix.ids {
		if !f(k, ix.view(slot)) {
			return
		}
	}
}

// String identifies the index, e.g. "index on Accident(date -> aid)".
func (ix *Index) String() string {
	return fmt.Sprintf("index on %s(%v -> %v)", ix.Rel, ix.X, ix.Y)
}
