// Package index implements the hash indices that back access constraints.
//
// An access constraint R(X -> Y, N) requires "an index on X for Y that,
// given an X-value ā, retrieves D_Y(X = ā)". Index is exactly that: it maps
// each X-value to the set of distinct Y-projections of matching tuples.
//
// Indices support incremental maintenance: Insert and Delete keep the
// buckets exact under tuple-level updates without rebuilding, tracking the
// multiplicity of each (X, Y) pair so a Y-projection disappears only when
// its last witnessing tuple does. Clone produces an independently
// maintainable copy whose mutations never touch the original — the
// building block for snapshot-isolated index versions.
package index

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

// Index is a hash index on attributes X for attributes Y over one relation
// instance. Buckets hold distinct Y-projections (set semantics), so the
// bucket size for key ā is exactly |D_Y(X = ā)| from the paper.
//
// Buckets are kept in canonical order: Y-projections sorted by their
// injective key encoding. This makes fetch results a pure function of the
// SET of tuples in the relation — independent of insertion order, of the
// delete/insert history, and (crucially for internal/shard) of how the
// relation is partitioned: merging the per-shard buckets of a
// hash-partitioned relation in key order reproduces the exact bucket a
// single-node index over the whole relation would serve.
type Index struct {
	Rel  string
	X, Y []schema.Attribute

	xpos, ypos []int
	buckets    map[value.Key][]data.Tuple
	// counts tracks, per (X, Y) pair, how many relation tuples project to
	// it; a bucket entry is removed when its count reaches zero. The map
	// stores ONLY multiplicities >= 2: a projection present in its bucket
	// with no counts entry has multiplicity 1. Multiplicity 1 is the
	// overwhelmingly common case, so the implicit representation keeps the
	// map (and its per-pair concatenated keys) near-empty — Clone copies
	// almost nothing and checkpoint restore skips the map entirely.
	counts map[value.Key]int
	// owned says which bucket slices this index may mutate in place. nil
	// means all of them (a freshly built index); after a Clone, both
	// sides own nothing and re-copy each bucket on first write, so
	// mutations on either side never reach the other.
	owned map[value.Key]bool
}

// ownsBucket reports whether the bucket for k may be mutated in place.
func (ix *Index) ownsBucket(k value.Key) bool {
	return ix.owned == nil || ix.owned[k]
}

// claimBucket marks the bucket for k as owned (called after copying it).
func (ix *Index) claimBucket(k value.Key) {
	if ix.owned != nil {
		ix.owned[k] = true
	}
}

// New constructs an empty index on X for Y over relations shaped like rs.
// Empty X is allowed (the paper's R(∅ -> Y, N) form): all tuples share
// the single empty key.
func New(rs schema.Relation, x, y []schema.Attribute) (*Index, error) {
	xpos, err := rs.Positions(x)
	if err != nil {
		return nil, fmt.Errorf("index: bad X: %w", err)
	}
	ypos, err := rs.Positions(y)
	if err != nil {
		return nil, fmt.Errorf("index: bad Y: %w", err)
	}
	return &Index{
		Rel:     rs.Name,
		X:       append([]schema.Attribute(nil), x...),
		Y:       append([]schema.Attribute(nil), y...),
		xpos:    xpos,
		ypos:    ypos,
		buckets: make(map[value.Key][]data.Tuple),
		counts:  make(map[value.Key]int),
	}, nil
}

// Grow presizes an EMPTY index for buckets X-groups holding pairs
// distinct (X, Y) pairs in total, so a bulk restore (InstallBucket per
// bucket) fills the maps without incremental rehashing. Go maps only
// take a size hint at make time, hence the replace-while-empty rule; on
// a non-empty index Grow is a no-op rather than an error, since it is
// purely an optimization hint. The counts map is left alone: it holds
// only the (rare) multiplicity >= 2 pairs, so pairs would oversize it.
func (ix *Index) Grow(buckets, pairs int) {
	if len(ix.buckets) != 0 {
		return
	}
	ix.buckets = make(map[value.Key][]data.Tuple, buckets)
	_ = pairs
}

// Build constructs the index on X for Y over r. Buckets are appended
// during the scan and sorted once at the end: per-tuple sorted insertion
// would cost O(g) shifts and O(log g) key re-encodings per tuple on a
// group of size g — quadratic in g before an oversized group is even
// rejected by validation — while append-then-sort is O(g log g) total.
func Build(r *data.Relation, x, y []schema.Attribute) (*Index, error) {
	idx, err := New(r.Schema, x, y)
	if err != nil {
		return nil, err
	}
	// Multiplicities are tracked in a transient full map (existence checks
	// against an unsorted bucket would be quadratic); only the >= 2 tail
	// survives into idx.counts.
	cnt := make(map[value.Key]int)
	for _, t := range r.Tuples() {
		k := value.KeyOfAt(t, idx.xpos)
		proj := t.Project(idx.ypos)
		dk := pairKey(k, proj.Key())
		cnt[dk]++
		if cnt[dk] == 1 {
			idx.buckets[k] = append(idx.buckets[k], proj)
		}
	}
	for dk, n := range cnt {
		if n >= 2 {
			idx.counts[dk] = n
		}
	}
	idx.sortBuckets()
	return idx, nil
}

// sortBuckets restores the canonical per-bucket order after a bulk
// append-only build.
func (ix *Index) sortBuckets() {
	for _, b := range ix.buckets {
		if len(b) < 2 {
			continue
		}
		keys := make([]value.Key, len(b))
		for i, proj := range b {
			keys[i] = proj.Key()
		}
		sort.Sort(&keyedBucket{projs: b, keys: keys})
	}
}

// keyedBucket sorts a bucket by precomputed projection keys.
type keyedBucket struct {
	projs []data.Tuple
	keys  []value.Key
}

func (s *keyedBucket) Len() int           { return len(s.projs) }
func (s *keyedBucket) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *keyedBucket) Swap(i, j int) {
	s.projs[i], s.projs[j] = s.projs[j], s.projs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// pairKey is the injective encoding of (X-key, Y-projection-key).
func pairKey(k, pk value.Key) value.Key { return k + "\x00" + pk }

// Insert maintains the index for one inserted tuple, returning the
// tuple's X-key and the bucket size after the insert (so callers can
// check a cardinality bound without scanning all groups). Inserting a
// tuple whose (X, Y) pair is already present only bumps its multiplicity.
// The caller is responsible for set semantics at the relation level:
// Insert assumes t was a fresh relation tuple. The bucket stays in
// canonical (key-sorted) order.
func (ix *Index) Insert(t data.Tuple) (value.Key, int) {
	k := value.KeyOfAt(t, ix.xpos)
	proj := t.Project(ix.ypos)
	pk := proj.Key()
	b := ix.buckets[k]
	// Binary search for the canonical position; bucket sizes are bounded
	// by the constraint's cardinality, so the per-probe key encodings
	// stay cheap.
	at := sort.Search(len(b), func(i int) bool { return b[i].Key() >= pk })
	if at < len(b) && b[at].Key() == pk {
		// Pair already present: bump its multiplicity (implicit 1 when
		// absent from counts).
		dk := pairKey(k, pk)
		n := ix.counts[dk]
		if n == 0 {
			n = 1
		}
		ix.counts[dk] = n + 1
		return k, len(b)
	}
	if !ix.ownsBucket(k) {
		// Copy-on-write: this bucket's backing array is shared with a
		// pre-clone version whose readers still hold it.
		nb := make([]data.Tuple, len(b), len(b)+1)
		copy(nb, b)
		b = nb
		ix.claimBucket(k)
	}
	b = append(b, nil)
	copy(b[at+1:], b[at:])
	b[at] = proj
	ix.buckets[k] = b
	return k, len(b)
}

// Delete maintains the index for one deleted tuple, returning the tuple's
// X-key and the bucket size after the delete. The Y-projection leaves the
// bucket only when no other relation tuple projects to it. Deleting a
// tuple that was never inserted is a no-op.
func (ix *Index) Delete(t data.Tuple) (value.Key, int) {
	k := value.KeyOfAt(t, ix.xpos)
	proj := t.Project(ix.ypos)
	pk := proj.Key()
	b := ix.buckets[k]
	at := sort.Search(len(b), func(i int) bool { return b[i].Key() >= pk })
	if at == len(b) || b[at].Key() != pk {
		// Pair was never inserted; deleting it is a no-op.
		return k, len(b)
	}
	dk := pairKey(k, pk)
	if n, ok := ix.counts[dk]; ok { // multiplicity >= 2
		if n > 2 {
			ix.counts[dk] = n - 1
		} else {
			delete(ix.counts, dk) // back to the implicit 1
		}
		return k, len(b)
	}
	// Multiplicity 1: the projection leaves the bucket.
	var nb []data.Tuple
	if ix.ownsBucket(k) {
		nb = b[:at]
	} else {
		nb = make([]data.Tuple, at, len(b)-1)
		copy(nb, b[:at])
		ix.claimBucket(k)
	}
	nb = append(nb, b[at+1:]...)
	if len(nb) == 0 {
		delete(ix.buckets, k)
		delete(ix.owned, k)
		return k, 0
	}
	ix.buckets[k] = nb
	return k, len(nb)
}

// Clone returns a copy of ix that can be maintained incrementally while
// readers keep using ix: mutations on either side never reach the other.
// Bucket slices are shared until first write — Clone renounces in-place
// mutation rights on BOTH sides, so each re-copies a bucket the first
// time it changes it.
func (ix *Index) Clone() *Index {
	cp := &Index{
		Rel:     ix.Rel,
		X:       ix.X,
		Y:       ix.Y,
		xpos:    ix.xpos,
		ypos:    ix.ypos,
		buckets: make(map[value.Key][]data.Tuple, len(ix.buckets)),
		counts:  make(map[value.Key]int, len(ix.counts)),
		owned:   make(map[value.Key]bool),
	}
	for k, b := range ix.buckets {
		cp.buckets[k] = b
	}
	for dk, n := range ix.counts {
		cp.counts[dk] = n
	}
	ix.owned = make(map[value.Key]bool)
	return cp
}

// Dump visits every bucket in sorted X-key order, with projections in
// canonical order and, aligned with them, each projection's Key and the
// multiplicity of each (X, Y) pair — the complete serializable state of
// the index. It is the checkpoint-writing hook of internal/durable: Dump
// plus InstallBucket round-trips an index exactly, so recovery restores
// buckets verbatim instead of re-running Build's scan-and-sort. The
// projection keys are surfaced so the checkpoint codec can serialize
// tuples AS their keys without re-encoding. It stops at the first error
// f returns. Slices passed to f are shared; f must not mutate or retain
// them past the call.
func (ix *Index) Dump(f func(k value.Key, projs []data.Tuple, projKeys []value.Key, counts []int) error) error {
	counts := make([]int, 0, 16)
	projKeys := make([]value.Key, 0, 16)
	for _, k := range ix.Keys() {
		b := ix.buckets[k]
		counts = counts[:0]
		projKeys = projKeys[:0]
		for _, proj := range b {
			pk := proj.Key()
			projKeys = append(projKeys, pk)
			n := ix.counts[pairKey(k, pk)]
			if n == 0 {
				n = 1 // implicit multiplicity
			}
			counts = append(counts, n)
		}
		if err := f(k, b, projKeys, counts); err != nil {
			return err
		}
	}
	return nil
}

// InstallBucket installs one serialized bucket into a fresh index (built
// with New) — the recovery fast path: no per-tuple canonical-position
// search, no end-of-build sort, no projection-key re-encode. projs must
// already be in canonical (strictly ascending projection-key) order with
// their keys in projKeys and multiplicities in counts; all three come
// from a Dump of the index being restored, and projKeys[i] = projs[i].Key()
// is the caller's contract (the checkpoint codec decodes each projection
// FROM its key, so the correspondence holds by construction). The bucket
// must not already be present. Ownership of projs transfers to the
// index.
func (ix *Index) InstallBucket(k value.Key, projs []data.Tuple, projKeys []value.Key, counts []int) error {
	if len(projs) == 0 || len(projs) != len(counts) || len(projs) != len(projKeys) {
		return fmt.Errorf("index: bucket of %d projections with %d keys, %d counts", len(projs), len(projKeys), len(counts))
	}
	if _, ok := ix.buckets[k]; ok {
		return fmt.Errorf("index: bucket %q installed twice", string(k))
	}
	prev := value.Key("")
	for i, proj := range projs {
		if len(proj) != len(ix.ypos) {
			return fmt.Errorf("index: projection arity %d, want %d", len(proj), len(ix.ypos))
		}
		if counts[i] < 1 {
			return fmt.Errorf("index: projection multiplicity %d", counts[i])
		}
		pk := projKeys[i]
		if i > 0 && pk <= prev {
			return fmt.Errorf("index: bucket not in canonical order")
		}
		prev = pk
		if counts[i] > 1 {
			ix.counts[pairKey(k, pk)] = counts[i]
		}
	}
	ix.buckets[k] = projs
	return nil
}

// Fetch returns the distinct Y-projections D_Y(X = ā) for the X-value ā.
// The returned slice is shared; callers must not mutate it.
func (ix *Index) Fetch(xvals []value.Value) []data.Tuple {
	return ix.buckets[value.KeyOf(xvals...)]
}

// FetchKey is Fetch with a pre-encoded key, avoiding re-encoding in hot loops.
func (ix *Index) FetchKey(k value.Key) []data.Tuple { return ix.buckets[k] }

// MaxGroup returns the largest bucket size: max over ā of |D_Y(X = ā)|.
// This is the quantity a cardinality constraint bounds.
func (ix *Index) MaxGroup() int {
	m := 0
	for _, b := range ix.buckets {
		if len(b) > m {
			m = len(b)
		}
	}
	return m
}

// Groups returns the number of distinct X-values present.
func (ix *Index) Groups() int { return len(ix.buckets) }

// Keys returns the distinct X-keys present, sorted; mainly for tests and
// diagnostics that compare two indices.
func (ix *Index) Keys() []value.Key {
	out := make([]value.Key, 0, len(ix.buckets))
	for k := range ix.buckets {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Buckets calls f for every (X-key, bucket) pair, in unspecified key
// order, stopping early when f returns false. Bucket slices are shared
// (and in canonical projection-key order); callers must not mutate them.
// It is the bulk-read hook coordinators use to merge per-shard group
// sizes without materializing sorted key lists.
func (ix *Index) Buckets(f func(k value.Key, bucket []data.Tuple) bool) {
	for k, b := range ix.buckets {
		if !f(k, b) {
			return
		}
	}
}

// String identifies the index, e.g. "index on Accident(date -> aid)".
func (ix *Index) String() string {
	return fmt.Sprintf("index on %s(%v -> %v)", ix.Rel, ix.X, ix.Y)
}
