// Package index implements the hash indices that back access constraints.
//
// An access constraint R(X -> Y, N) requires "an index on X for Y that,
// given an X-value ā, retrieves D_Y(X = ā)". Index is exactly that: it maps
// each X-value to the set of distinct Y-projections of matching tuples.
//
// Indices support incremental maintenance: Insert and Delete keep the
// buckets exact under tuple-level updates without rebuilding, tracking the
// multiplicity of each (X, Y) pair so a Y-projection disappears only when
// its last witnessing tuple does. Clone produces an independently
// maintainable copy whose mutations never touch the original — the
// building block for snapshot-isolated index versions.
package index

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

// Index is a hash index on attributes X for attributes Y over one relation
// instance. Buckets hold distinct Y-projections (set semantics), so the
// bucket size for key ā is exactly |D_Y(X = ā)| from the paper.
//
// Buckets are kept in canonical order: Y-projections sorted by their
// injective key encoding. This makes fetch results a pure function of the
// SET of tuples in the relation — independent of insertion order, of the
// delete/insert history, and (crucially for internal/shard) of how the
// relation is partitioned: merging the per-shard buckets of a
// hash-partitioned relation in key order reproduces the exact bucket a
// single-node index over the whole relation would serve.
type Index struct {
	Rel  string
	X, Y []schema.Attribute

	xpos, ypos []int
	buckets    map[value.Key][]data.Tuple
	// counts tracks, per (X, Y) pair, how many relation tuples project to
	// it; a bucket entry is removed when its count reaches zero.
	counts map[value.Key]int
	// owned says which bucket slices this index may mutate in place. nil
	// means all of them (a freshly built index); after a Clone, both
	// sides own nothing and re-copy each bucket on first write, so
	// mutations on either side never reach the other.
	owned map[value.Key]bool
}

// ownsBucket reports whether the bucket for k may be mutated in place.
func (ix *Index) ownsBucket(k value.Key) bool {
	return ix.owned == nil || ix.owned[k]
}

// claimBucket marks the bucket for k as owned (called after copying it).
func (ix *Index) claimBucket(k value.Key) {
	if ix.owned != nil {
		ix.owned[k] = true
	}
}

// New constructs an empty index on X for Y over relations shaped like rs.
// Empty X is allowed (the paper's R(∅ -> Y, N) form): all tuples share
// the single empty key.
func New(rs schema.Relation, x, y []schema.Attribute) (*Index, error) {
	xpos, err := rs.Positions(x)
	if err != nil {
		return nil, fmt.Errorf("index: bad X: %w", err)
	}
	ypos, err := rs.Positions(y)
	if err != nil {
		return nil, fmt.Errorf("index: bad Y: %w", err)
	}
	return &Index{
		Rel:     rs.Name,
		X:       append([]schema.Attribute(nil), x...),
		Y:       append([]schema.Attribute(nil), y...),
		xpos:    xpos,
		ypos:    ypos,
		buckets: make(map[value.Key][]data.Tuple),
		counts:  make(map[value.Key]int),
	}, nil
}

// Build constructs the index on X for Y over r. Buckets are appended
// during the scan and sorted once at the end: per-tuple sorted insertion
// would cost O(g) shifts and O(log g) key re-encodings per tuple on a
// group of size g — quadratic in g before an oversized group is even
// rejected by validation — while append-then-sort is O(g log g) total.
func Build(r *data.Relation, x, y []schema.Attribute) (*Index, error) {
	idx, err := New(r.Schema, x, y)
	if err != nil {
		return nil, err
	}
	for _, t := range r.Tuples() {
		idx.insertAppend(t)
	}
	idx.sortBuckets()
	return idx, nil
}

// insertAppend is Insert without the canonical-position search: the new
// projection goes to the bucket's end. Only Build may use it, followed
// by sortBuckets.
func (ix *Index) insertAppend(t data.Tuple) {
	k := value.KeyOfAt(t, ix.xpos)
	proj := t.Project(ix.ypos)
	dk := pairKey(k, proj.Key())
	ix.counts[dk]++
	if ix.counts[dk] == 1 {
		ix.buckets[k] = append(ix.buckets[k], proj)
	}
}

// sortBuckets restores the canonical per-bucket order after a bulk
// append-only build.
func (ix *Index) sortBuckets() {
	for _, b := range ix.buckets {
		if len(b) < 2 {
			continue
		}
		keys := make([]value.Key, len(b))
		for i, proj := range b {
			keys[i] = proj.Key()
		}
		sort.Sort(&keyedBucket{projs: b, keys: keys})
	}
}

// keyedBucket sorts a bucket by precomputed projection keys.
type keyedBucket struct {
	projs []data.Tuple
	keys  []value.Key
}

func (s *keyedBucket) Len() int           { return len(s.projs) }
func (s *keyedBucket) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *keyedBucket) Swap(i, j int) {
	s.projs[i], s.projs[j] = s.projs[j], s.projs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// pairKey is the injective encoding of (X-key, Y-projection-key).
func pairKey(k, pk value.Key) value.Key { return k + "\x00" + pk }

// Insert maintains the index for one inserted tuple, returning the
// tuple's X-key and the bucket size after the insert (so callers can
// check a cardinality bound without scanning all groups). Inserting a
// tuple whose (X, Y) pair is already present only bumps its multiplicity.
// The caller is responsible for set semantics at the relation level:
// Insert assumes t was a fresh relation tuple. The bucket stays in
// canonical (key-sorted) order.
func (ix *Index) Insert(t data.Tuple) (value.Key, int) {
	k := value.KeyOfAt(t, ix.xpos)
	proj := t.Project(ix.ypos)
	pk := proj.Key()
	dk := pairKey(k, pk)
	ix.counts[dk]++
	b := ix.buckets[k]
	if ix.counts[dk] == 1 {
		// Binary search for the canonical position; bucket sizes are bounded
		// by the constraint's cardinality, so the per-probe key encodings
		// stay cheap.
		at := sort.Search(len(b), func(i int) bool { return b[i].Key() >= pk })
		if !ix.ownsBucket(k) {
			// Copy-on-write: this bucket's backing array is shared with a
			// pre-clone version whose readers still hold it.
			nb := make([]data.Tuple, len(b), len(b)+1)
			copy(nb, b)
			b = nb
			ix.claimBucket(k)
		}
		b = append(b, nil)
		copy(b[at+1:], b[at:])
		b[at] = proj
		ix.buckets[k] = b
	}
	return k, len(b)
}

// Delete maintains the index for one deleted tuple, returning the tuple's
// X-key and the bucket size after the delete. The Y-projection leaves the
// bucket only when no other relation tuple projects to it. Deleting a
// tuple that was never inserted is a no-op.
func (ix *Index) Delete(t data.Tuple) (value.Key, int) {
	k := value.KeyOfAt(t, ix.xpos)
	proj := t.Project(ix.ypos)
	pk := proj.Key()
	dk := pairKey(k, pk)
	n, ok := ix.counts[dk]
	if !ok {
		return k, len(ix.buckets[k])
	}
	if n > 1 {
		ix.counts[dk] = n - 1
		return k, len(ix.buckets[k])
	}
	delete(ix.counts, dk)
	b := ix.buckets[k]
	var nb []data.Tuple
	if ix.ownsBucket(k) {
		nb = b[:0]
	} else {
		nb = make([]data.Tuple, 0, len(b)-1)
		ix.claimBucket(k)
	}
	for _, p := range b {
		if p.Key() != pk {
			nb = append(nb, p)
		}
	}
	if len(nb) == 0 {
		delete(ix.buckets, k)
		delete(ix.owned, k)
		return k, 0
	}
	ix.buckets[k] = nb
	return k, len(nb)
}

// Clone returns a copy of ix that can be maintained incrementally while
// readers keep using ix: mutations on either side never reach the other.
// Bucket slices are shared until first write — Clone renounces in-place
// mutation rights on BOTH sides, so each re-copies a bucket the first
// time it changes it.
func (ix *Index) Clone() *Index {
	cp := &Index{
		Rel:     ix.Rel,
		X:       ix.X,
		Y:       ix.Y,
		xpos:    ix.xpos,
		ypos:    ix.ypos,
		buckets: make(map[value.Key][]data.Tuple, len(ix.buckets)),
		counts:  make(map[value.Key]int, len(ix.counts)),
		owned:   make(map[value.Key]bool),
	}
	for k, b := range ix.buckets {
		cp.buckets[k] = b
	}
	for dk, n := range ix.counts {
		cp.counts[dk] = n
	}
	ix.owned = make(map[value.Key]bool)
	return cp
}

// Fetch returns the distinct Y-projections D_Y(X = ā) for the X-value ā.
// The returned slice is shared; callers must not mutate it.
func (ix *Index) Fetch(xvals []value.Value) []data.Tuple {
	return ix.buckets[value.KeyOf(xvals...)]
}

// FetchKey is Fetch with a pre-encoded key, avoiding re-encoding in hot loops.
func (ix *Index) FetchKey(k value.Key) []data.Tuple { return ix.buckets[k] }

// MaxGroup returns the largest bucket size: max over ā of |D_Y(X = ā)|.
// This is the quantity a cardinality constraint bounds.
func (ix *Index) MaxGroup() int {
	m := 0
	for _, b := range ix.buckets {
		if len(b) > m {
			m = len(b)
		}
	}
	return m
}

// Groups returns the number of distinct X-values present.
func (ix *Index) Groups() int { return len(ix.buckets) }

// Keys returns the distinct X-keys present, sorted; mainly for tests and
// diagnostics that compare two indices.
func (ix *Index) Keys() []value.Key {
	out := make([]value.Key, 0, len(ix.buckets))
	for k := range ix.buckets {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Buckets calls f for every (X-key, bucket) pair, in unspecified key
// order, stopping early when f returns false. Bucket slices are shared
// (and in canonical projection-key order); callers must not mutate them.
// It is the bulk-read hook coordinators use to merge per-shard group
// sizes without materializing sorted key lists.
func (ix *Index) Buckets(f func(k value.Key, bucket []data.Tuple) bool) {
	for k, b := range ix.buckets {
		if !f(k, b) {
			return
		}
	}
}

// String identifies the index, e.g. "index on Accident(date -> aid)".
func (ix *Index) String() string {
	return fmt.Sprintf("index on %s(%v -> %v)", ix.Rel, ix.X, ix.Y)
}
