// Package index implements the hash indices that back access constraints.
//
// An access constraint R(X -> Y, N) requires "an index on X for Y that,
// given an X-value ā, retrieves D_Y(X = ā)". Index is exactly that: it maps
// each X-value to the set of distinct Y-projections of matching tuples.
package index

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

// Index is a hash index on attributes X for attributes Y over one relation
// instance. Buckets hold distinct Y-projections (set semantics), so the
// bucket size for key ā is exactly |D_Y(X = ā)| from the paper.
type Index struct {
	Rel  string
	X, Y []schema.Attribute

	xpos, ypos []int
	buckets    map[value.Key][]data.Tuple
}

// Build constructs the index on X for Y over r. Empty X is allowed (the
// paper's R(∅ -> Y, N) form): all tuples share the single empty key.
func Build(r *data.Relation, x, y []schema.Attribute) (*Index, error) {
	xpos, err := r.Schema.Positions(x)
	if err != nil {
		return nil, fmt.Errorf("index: bad X: %w", err)
	}
	ypos, err := r.Schema.Positions(y)
	if err != nil {
		return nil, fmt.Errorf("index: bad Y: %w", err)
	}
	idx := &Index{
		Rel:     r.Schema.Name,
		X:       append([]schema.Attribute(nil), x...),
		Y:       append([]schema.Attribute(nil), y...),
		xpos:    xpos,
		ypos:    ypos,
		buckets: make(map[value.Key][]data.Tuple),
	}
	dedup := make(map[value.Key]bool)
	for _, t := range r.Tuples() {
		k := value.KeyOfAt(t, xpos)
		proj := t.Project(ypos)
		dk := k + "\x00" + value.Key(proj.Key())
		if dedup[dk] {
			continue
		}
		dedup[dk] = true
		idx.buckets[k] = append(idx.buckets[k], proj)
	}
	return idx, nil
}

// Fetch returns the distinct Y-projections D_Y(X = ā) for the X-value ā.
// The returned slice is shared; callers must not mutate it.
func (ix *Index) Fetch(xvals []value.Value) []data.Tuple {
	return ix.buckets[value.KeyOf(xvals...)]
}

// FetchKey is Fetch with a pre-encoded key, avoiding re-encoding in hot loops.
func (ix *Index) FetchKey(k value.Key) []data.Tuple { return ix.buckets[k] }

// MaxGroup returns the largest bucket size: max over ā of |D_Y(X = ā)|.
// This is the quantity a cardinality constraint bounds.
func (ix *Index) MaxGroup() int {
	m := 0
	for _, b := range ix.buckets {
		if len(b) > m {
			m = len(b)
		}
	}
	return m
}

// Groups returns the number of distinct X-values present.
func (ix *Index) Groups() int { return len(ix.buckets) }

// String identifies the index, e.g. "index on Accident(date -> aid)".
func (ix *Index) String() string {
	return fmt.Sprintf("index on %s(%v -> %v)", ix.Rel, ix.X, ix.Y)
}
