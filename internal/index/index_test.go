package index

import (
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

func buildRel(t *testing.T, rows [][]int64) *data.Relation {
	t.Helper()
	r := data.NewRelation(schema.MustRelation("R", "A", "B", "C"))
	for _, row := range rows {
		vals := make([]value.Value, len(row))
		for i, x := range row {
			vals[i] = value.NewInt(x)
		}
		r.MustInsert(vals...)
	}
	return r
}

func TestBuildAndFetch(t *testing.T) {
	r := buildRel(t, [][]int64{{1, 10, 100}, {1, 20, 100}, {2, 30, 200}})
	ix, err := Build(r, []schema.Attribute{"A"}, []schema.Attribute{"B"})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Fetch([]value.Value{value.NewInt(1)}).Tuples()
	if len(got) != 2 {
		t.Fatalf("Fetch(A=1) returned %d tuples, want 2", len(got))
	}
	if got := ix.Fetch([]value.Value{value.NewInt(9)}).Tuples(); len(got) != 0 {
		t.Errorf("Fetch(A=9) = %v, want empty", got)
	}
}

func TestFetchReturnsDistinctYProjections(t *testing.T) {
	// Two tuples with same (A,B) but different C: D_B(A=1) has ONE element.
	r := buildRel(t, [][]int64{{1, 10, 100}, {1, 10, 200}})
	ix, err := Build(r, []schema.Attribute{"A"}, []schema.Attribute{"B"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Fetch([]value.Value{value.NewInt(1)}).Tuples(); len(got) != 1 {
		t.Errorf("distinct Y-projection count = %d, want 1", len(got))
	}
}

func TestEmptyXIndex(t *testing.T) {
	// R(∅ -> C, N): single bucket keyed by the empty key.
	r := buildRel(t, [][]int64{{1, 10, 100}, {2, 20, 100}, {3, 30, 300}})
	ix, err := Build(r, nil, []schema.Attribute{"C"})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Fetch(nil).Tuples()
	if len(got) != 2 { // distinct C values: 100, 300
		t.Errorf("Fetch(∅) = %d tuples, want 2", len(got))
	}
	if ix.Groups() != 1 {
		t.Errorf("Groups = %d, want 1", ix.Groups())
	}
}

func TestMaxGroup(t *testing.T) {
	r := buildRel(t, [][]int64{{1, 10, 0}, {1, 20, 0}, {1, 30, 0}, {2, 40, 0}})
	ix, err := Build(r, []schema.Attribute{"A"}, []schema.Attribute{"B"})
	if err != nil {
		t.Fatal(err)
	}
	if ix.MaxGroup() != 3 {
		t.Errorf("MaxGroup = %d, want 3", ix.MaxGroup())
	}
}

func TestCompositeKeys(t *testing.T) {
	r := buildRel(t, [][]int64{{1, 2, 100}, {1, 3, 200}, {2, 2, 300}})
	ix, err := Build(r, []schema.Attribute{"A", "B"}, []schema.Attribute{"C"})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Fetch([]value.Value{value.NewInt(1), value.NewInt(2)}).Tuples()
	if len(got) != 1 || got[0][0] != value.NewInt(100) {
		t.Errorf("Fetch(1,2) = %v", got)
	}
}

func TestBadAttributes(t *testing.T) {
	r := buildRel(t, nil)
	if _, err := Build(r, []schema.Attribute{"Z"}, nil); err == nil {
		t.Error("unknown X attribute must error")
	}
	if _, err := Build(r, nil, []schema.Attribute{"Z"}); err == nil {
		t.Error("unknown Y attribute must error")
	}
}

func TestKeyIndexProperty(t *testing.T) {
	// Property: for an index on A for B, Fetch(a) returns exactly the distinct
	// B-values of rows whose A equals a.
	f := func(rows []struct{ A, B int8 }) bool {
		r := data.NewRelation(schema.MustRelation("R", "A", "B", "C"))
		want := make(map[int8]map[int8]bool)
		for _, row := range rows {
			r.MustInsert(value.NewInt(int64(row.A)), value.NewInt(int64(row.B)), value.NewInt(0))
			if want[row.A] == nil {
				want[row.A] = make(map[int8]bool)
			}
			want[row.A][row.B] = true
		}
		ix, err := Build(r, []schema.Attribute{"A"}, []schema.Attribute{"B"})
		if err != nil {
			return false
		}
		for a, bs := range want {
			got := ix.Fetch([]value.Value{value.NewInt(int64(a))}).Tuples()
			if len(got) != len(bs) {
				return false
			}
			for _, tup := range got {
				if !bs[int8(tup[0].Int())] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mirror rebuilds an index from scratch and asserts it matches ix exactly:
// same keys, and for each key the same set of Y-projections.
func assertSameIndex(t *testing.T, ix *Index, r *data.Relation, x, y []schema.Attribute) {
	t.Helper()
	ref, err := Build(r, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ix.Groups(), ref.Groups(); got != want {
		t.Fatalf("Groups = %d, rebuild says %d", got, want)
	}
	for _, k := range ref.Keys() {
		got, want := ix.FetchKey(k).Tuples(), ref.FetchKey(k).Tuples()
		if len(got) != len(want) {
			t.Fatalf("key %q: %d projections, rebuild says %d", k, len(got), len(want))
		}
		seen := make(map[string]bool, len(got))
		for _, p := range got {
			seen[string(p.Key())] = true
		}
		for _, p := range want {
			if !seen[string(p.Key())] {
				t.Fatalf("key %q: projection %v missing from incremental index", k, p)
			}
		}
	}
}

func TestIncrementalInsertDelete(t *testing.T) {
	rs := schema.MustRelation("Casualty", "cid", "aid", "vid")
	r := data.NewRelation(rs)
	x, y := []schema.Attribute{"aid"}, []schema.Attribute{"vid"}
	ix, err := New(rs, x, y)
	if err != nil {
		t.Fatal(err)
	}
	ins := func(cid, aid, vid int64) data.Tuple {
		tup := data.Tuple{value.NewInt(cid), value.NewInt(aid), value.NewInt(vid)}
		if fresh, err := r.Insert(tup); err != nil || !fresh {
			t.Fatalf("insert: fresh=%v err=%v", fresh, err)
		}
		ix.Insert(tup)
		return tup
	}
	del := func(tup data.Tuple) {
		if gone, err := r.Delete(tup); err != nil || !gone {
			t.Fatalf("delete: gone=%v err=%v", gone, err)
		}
		ix.Delete(tup)
	}

	// Two distinct tuples witnessing the SAME (aid, vid) pair: deleting
	// one must keep the projection, deleting both must drop it.
	t1 := ins(1, 10, 100)
	t2 := ins(2, 10, 100)
	t3 := ins(3, 10, 101)
	assertSameIndex(t, ix, r, x, y)
	if g := len(ix.Fetch([]value.Value{value.NewInt(10)}).Tuples()); g != 2 {
		t.Fatalf("bucket for aid=10 has %d projections, want 2", g)
	}
	del(t1)
	assertSameIndex(t, ix, r, x, y)
	if g := len(ix.Fetch([]value.Value{value.NewInt(10)}).Tuples()); g != 2 {
		t.Fatalf("after deleting one of two witnesses: %d projections, want 2", g)
	}
	del(t2)
	assertSameIndex(t, ix, r, x, y)
	if g := len(ix.Fetch([]value.Value{value.NewInt(10)}).Tuples()); g != 1 {
		t.Fatalf("after deleting both witnesses: %d projections, want 1", g)
	}
	del(t3)
	if ix.Groups() != 0 {
		t.Fatalf("empty relation must have no groups, got %d", ix.Groups())
	}
	assertSameIndex(t, ix, r, x, y)

	// Reinsert after full deletion.
	ins(4, 10, 100)
	assertSameIndex(t, ix, r, x, y)
}

func TestIncrementalMatchesRebuildQuick(t *testing.T) {
	// Property: replaying any op sequence, the incrementally maintained
	// index equals a from-scratch rebuild.
	f := func(ops []struct{ A, B, Del int8 }) bool {
		rs := schema.MustRelation("R", "A", "B", "C")
		r := data.NewRelation(rs)
		x, y := []schema.Attribute{"A"}, []schema.Attribute{"B"}
		ix, err := New(rs, x, y)
		if err != nil {
			return false
		}
		for i, op := range ops {
			tup := data.Tuple{
				value.NewInt(int64(op.A & 3)),
				value.NewInt(int64(op.B & 3)),
				value.NewInt(int64(i & 7)), // C varies: distinct tuples share (A,B)
			}
			if op.Del&1 == 0 {
				if fresh, err := r.Insert(tup); err != nil {
					return false
				} else if fresh {
					ix.Insert(tup)
				}
			} else {
				if gone, err := r.Delete(tup); err != nil {
					return false
				} else if gone {
					ix.Delete(tup)
				}
			}
		}
		ref, err := Build(r, x, y)
		if err != nil {
			return false
		}
		if ix.Groups() != ref.Groups() || ix.MaxGroup() != ref.MaxGroup() {
			return false
		}
		for _, k := range ref.Keys() {
			if len(ix.FetchKey(k).Tuples()) != len(ref.FetchKey(k).Tuples()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIsolation(t *testing.T) {
	rs := schema.MustRelation("R", "A", "B")
	r := data.NewRelation(rs)
	for i := int64(0); i < 4; i++ {
		r.MustInsert(value.NewInt(i%2), value.NewInt(i))
	}
	ix, err := Build(r, []schema.Attribute{"A"}, []schema.Attribute{"B"})
	if err != nil {
		t.Fatal(err)
	}
	before := len(ix.Fetch([]value.Value{value.NewInt(0)}).Tuples())

	cl := ix.Clone()
	cl.Insert(data.Tuple{value.NewInt(0), value.NewInt(99)})
	cl.Delete(data.Tuple{value.NewInt(1), value.NewInt(1)})

	if got := len(ix.Fetch([]value.Value{value.NewInt(0)}).Tuples()); got != before {
		t.Errorf("clone insert leaked into original: %d, want %d", got, before)
	}
	if got := len(ix.Fetch([]value.Value{value.NewInt(1)}).Tuples()); got != 2 {
		t.Errorf("clone delete leaked into original: %d, want 2", got)
	}
	if got := len(cl.Fetch([]value.Value{value.NewInt(0)}).Tuples()); got != before+1 {
		t.Errorf("clone missing its own insert: %d, want %d", got, before+1)
	}
}

func TestCloneIsolationBothDirections(t *testing.T) {
	// After Clone, mutations on the ORIGINAL must not leak into the clone
	// either: Clone renounces in-place bucket mutation on both sides.
	rs := schema.MustRelation("R", "A", "B")
	r := data.NewRelation(rs)
	r.MustInsert(value.NewInt(0), value.NewInt(1))
	ix, err := Build(r, []schema.Attribute{"A"}, []schema.Attribute{"B"})
	if err != nil {
		t.Fatal(err)
	}
	cl := ix.Clone()
	ix.Insert(data.Tuple{value.NewInt(0), value.NewInt(2)})
	ix.Delete(data.Tuple{value.NewInt(0), value.NewInt(1)})
	if got := len(cl.Fetch([]value.Value{value.NewInt(0)}).Tuples()); got != 1 {
		t.Errorf("original's mutations leaked into the clone: %d projections, want 1", got)
	}
	b := cl.Fetch([]value.Value{value.NewInt(0)}).Tuples()
	if b[0][0] != value.NewInt(1) {
		t.Errorf("clone bucket content changed: %v", b)
	}
}

// TestCanonicalBucketOrder pins the partition-invariance property that
// internal/shard's scatter-gather merge relies on: whatever order (and
// delete/insert history) tuples arrive in, a bucket holds its distinct
// Y-projections sorted by their key encoding, so two indexes over the
// same tuple SET serve byte-identical buckets.
func TestCanonicalBucketOrder(t *testing.T) {
	rs := schema.MustRelation("R", "A", "B", "C")
	mk := func(a, b, c int64) data.Tuple {
		return data.Tuple{value.NewInt(a), value.NewInt(b), value.NewInt(c)}
	}
	tuples := []data.Tuple{mk(1, 9, 0), mk(1, 3, 1), mk(1, 7, 2), mk(1, 1, 3), mk(1, 5, 4)}

	fwd := data.NewRelation(rs)
	rev := data.NewRelation(rs)
	for _, tp := range tuples {
		fwd.MustInsert(tp...)
	}
	for i := len(tuples) - 1; i >= 0; i-- {
		rev.MustInsert(tuples[i]...)
	}
	x, y := []schema.Attribute{"A"}, []schema.Attribute{"B"}
	ixF, err := Build(fwd, x, y)
	if err != nil {
		t.Fatal(err)
	}
	ixR, err := Build(rev, x, y)
	if err != nil {
		t.Fatal(err)
	}
	bF := ixF.Fetch([]value.Value{value.NewInt(1)}).Tuples()
	bR := ixR.Fetch([]value.Value{value.NewInt(1)}).Tuples()
	if len(bF) != len(tuples) || len(bR) != len(tuples) {
		t.Fatalf("bucket sizes %d/%d, want %d", len(bF), len(bR), len(tuples))
	}
	for i := range bF {
		if i > 0 && !(bF[i-1].Key() < bF[i].Key()) {
			t.Fatalf("bucket not in canonical order at %d: %v", i, bF)
		}
		if bF[i].Key() != bR[i].Key() {
			t.Fatalf("insertion order leaked into bucket order: %v vs %v", bF, bR)
		}
	}

	// Delete + reinsert in a different relative position: still canonical.
	ixF.Delete(mk(1, 1, 3))
	ixF.Insert(mk(1, 1, 3))
	bF = ixF.Fetch([]value.Value{value.NewInt(1)}).Tuples()
	for i := 1; i < len(bF); i++ {
		if !(bF[i-1].Key() < bF[i].Key()) {
			t.Fatalf("delete/reinsert broke canonical order: %v", bF)
		}
	}
}
