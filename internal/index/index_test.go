package index

import (
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

func buildRel(t *testing.T, rows [][]int64) *data.Relation {
	t.Helper()
	r := data.NewRelation(schema.MustRelation("R", "A", "B", "C"))
	for _, row := range rows {
		vals := make([]value.Value, len(row))
		for i, x := range row {
			vals[i] = value.NewInt(x)
		}
		r.MustInsert(vals...)
	}
	return r
}

func TestBuildAndFetch(t *testing.T) {
	r := buildRel(t, [][]int64{{1, 10, 100}, {1, 20, 100}, {2, 30, 200}})
	ix, err := Build(r, []schema.Attribute{"A"}, []schema.Attribute{"B"})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Fetch([]value.Value{value.NewInt(1)})
	if len(got) != 2 {
		t.Fatalf("Fetch(A=1) returned %d tuples, want 2", len(got))
	}
	if got := ix.Fetch([]value.Value{value.NewInt(9)}); len(got) != 0 {
		t.Errorf("Fetch(A=9) = %v, want empty", got)
	}
}

func TestFetchReturnsDistinctYProjections(t *testing.T) {
	// Two tuples with same (A,B) but different C: D_B(A=1) has ONE element.
	r := buildRel(t, [][]int64{{1, 10, 100}, {1, 10, 200}})
	ix, err := Build(r, []schema.Attribute{"A"}, []schema.Attribute{"B"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Fetch([]value.Value{value.NewInt(1)}); len(got) != 1 {
		t.Errorf("distinct Y-projection count = %d, want 1", len(got))
	}
}

func TestEmptyXIndex(t *testing.T) {
	// R(∅ -> C, N): single bucket keyed by the empty key.
	r := buildRel(t, [][]int64{{1, 10, 100}, {2, 20, 100}, {3, 30, 300}})
	ix, err := Build(r, nil, []schema.Attribute{"C"})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Fetch(nil)
	if len(got) != 2 { // distinct C values: 100, 300
		t.Errorf("Fetch(∅) = %d tuples, want 2", len(got))
	}
	if ix.Groups() != 1 {
		t.Errorf("Groups = %d, want 1", ix.Groups())
	}
}

func TestMaxGroup(t *testing.T) {
	r := buildRel(t, [][]int64{{1, 10, 0}, {1, 20, 0}, {1, 30, 0}, {2, 40, 0}})
	ix, err := Build(r, []schema.Attribute{"A"}, []schema.Attribute{"B"})
	if err != nil {
		t.Fatal(err)
	}
	if ix.MaxGroup() != 3 {
		t.Errorf("MaxGroup = %d, want 3", ix.MaxGroup())
	}
}

func TestCompositeKeys(t *testing.T) {
	r := buildRel(t, [][]int64{{1, 2, 100}, {1, 3, 200}, {2, 2, 300}})
	ix, err := Build(r, []schema.Attribute{"A", "B"}, []schema.Attribute{"C"})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Fetch([]value.Value{value.NewInt(1), value.NewInt(2)})
	if len(got) != 1 || got[0][0] != value.NewInt(100) {
		t.Errorf("Fetch(1,2) = %v", got)
	}
}

func TestBadAttributes(t *testing.T) {
	r := buildRel(t, nil)
	if _, err := Build(r, []schema.Attribute{"Z"}, nil); err == nil {
		t.Error("unknown X attribute must error")
	}
	if _, err := Build(r, nil, []schema.Attribute{"Z"}); err == nil {
		t.Error("unknown Y attribute must error")
	}
}

func TestKeyIndexProperty(t *testing.T) {
	// Property: for an index on A for B, Fetch(a) returns exactly the distinct
	// B-values of rows whose A equals a.
	f := func(rows []struct{ A, B int8 }) bool {
		r := data.NewRelation(schema.MustRelation("R", "A", "B", "C"))
		want := make(map[int8]map[int8]bool)
		for _, row := range rows {
			r.MustInsert(value.NewInt(int64(row.A)), value.NewInt(int64(row.B)), value.NewInt(0))
			if want[row.A] == nil {
				want[row.A] = make(map[int8]bool)
			}
			want[row.A][row.B] = true
		}
		ix, err := Build(r, []schema.Attribute{"A"}, []schema.Attribute{"B"})
		if err != nil {
			return false
		}
		for a, bs := range want {
			got := ix.Fetch([]value.Value{value.NewInt(int64(a))})
			if len(got) != len(bs) {
				return false
			}
			for _, tup := range got {
				if !bs[int8(tup[0].Int())] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
