package index

import (
	"bytes"
	"testing"

	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

// TestFetchResultIsImmutableView is the regression test for the aliasing
// bug this package used to have: Fetch returned the index's internal
// bucket slice by reference, so a caller mutating (or appending to) the
// result corrupted the index for every later reader. Fetch now returns
// an immutable Bucket view; Tuples() materializes fresh copies.
func TestFetchResultIsImmutableView(t *testing.T) {
	r := buildRel(t, [][]int64{{1, 10, 0}, {1, 20, 0}, {2, 30, 0}})
	ix, err := Build(r, []schema.Attribute{"A"}, []schema.Attribute{"B"})
	if err != nil {
		t.Fatal(err)
	}
	key := []value.Value{value.NewInt(1)}

	// Scribble over every tuple the caller-facing surface hands out.
	got := ix.Fetch(key).Tuples()
	for _, tup := range got {
		for i := range tup {
			tup[i] = value.NewInt(-999)
		}
	}

	// The index must be untouched: same projections, same order.
	b := ix.Fetch(key)
	if b.Len() != 2 {
		t.Fatalf("bucket size changed after caller mutation: %d, want 2", b.Len())
	}
	if b.At(0, 0) != value.NewInt(10) || b.At(1, 0) != value.NewInt(20) {
		t.Fatalf("caller mutation corrupted the index: %v", b.Tuples())
	}

	// AppendRow into a caller buffer must also hand out values, not
	// aliases of index memory.
	var buf data.Tuple
	buf = b.AppendRow(buf, 0)
	buf[0] = value.NewInt(-1)
	if ix.Fetch(key).At(0, 0) != value.NewInt(10) {
		t.Fatal("AppendRow result aliased index memory")
	}
}

// TestBucketViewStableAcrossMutation pins the snapshot semantics of the
// view: a Bucket fetched before an (owned, in-place) index mutation must
// keep serving the rows it had — the view is capped to the fetch-time
// length and mutations of a cloned index never write through shared
// backing.
func TestBucketViewStableAcrossMutation(t *testing.T) {
	r := buildRel(t, [][]int64{{1, 10, 0}, {1, 30, 0}})
	ix, err := Build(r, []schema.Attribute{"A"}, []schema.Attribute{"B"})
	if err != nil {
		t.Fatal(err)
	}
	before := ix.Fetch([]value.Value{value.NewInt(1)})
	if before.Len() != 2 {
		t.Fatalf("setup: bucket size %d, want 2", before.Len())
	}

	cl := ix.Clone()
	cl.Insert(data.Tuple{value.NewInt(1), value.NewInt(20), value.NewInt(1)})
	cl.Delete(data.Tuple{value.NewInt(1), value.NewInt(10), value.NewInt(0)})

	if before.Len() != 2 || before.At(0, 0) != value.NewInt(10) || before.At(1, 0) != value.NewInt(30) {
		t.Fatalf("pre-mutation view changed under clone mutation: %v", before.Tuples())
	}
}

// FuzzPairKey checks injectivity of the composite (group key, projection
// key) encoding: two pairs collide iff they are equal component-wise.
// The keys fed in are genuine value.Key encodings — including strings
// containing NUL and the separator byte — since those are the only
// inputs pairKey ever sees.
func FuzzPairKey(f *testing.F) {
	f.Add(int64(1), "a", int64(2), "b")
	f.Add(int64(0), "", int64(0), "\x00")
	f.Add(int64(1), "x\x00y", int64(1), "x")
	f.Add(int64(-1), "\x00\x00", int64(255), "")
	f.Fuzz(func(t *testing.T, n1 int64, s1 string, n2 int64, s2 string) {
		k1 := value.KeyOf(value.NewInt(n1), value.NewString(s1))
		k2 := value.KeyOf(value.NewInt(n2), value.NewString(s2))
		pk1 := value.KeyOf(value.NewString(s1))
		pk2 := value.KeyOf(value.NewString(s2))
		for _, c := range [][4]value.Key{
			{k1, pk1, k2, pk2},
			{k1, pk2, k2, pk1},
			{k1, pk1, k1, pk2},
			{k1, pk1, k2, pk1},
		} {
			same := c[0] == c[2] && c[1] == c[3]
			if (pairKey(c[0], c[1]) == pairKey(c[2], c[3])) != same {
				t.Fatalf("pairKey injectivity violated: (%q,%q) vs (%q,%q)", c[0], c[1], c[2], c[3])
			}
		}
	})
}

// TestMergeBucketsMatchesSingleIndex checks the K-way merge against a
// single index over the union of the parts: same projections, same
// canonical order, byte-identical keys.
func TestMergeBucketsMatchesSingleIndex(t *testing.T) {
	rs := schema.MustRelation("R", "A", "B", "C")
	x, y := []schema.Attribute{"A"}, []schema.Attribute{"B", "C"}
	mk := func(a, b, c int64) data.Tuple {
		return data.Tuple{value.NewInt(a), value.NewInt(b), value.NewInt(c)}
	}
	// Three parts with overlapping projections; the union index is the
	// reference.
	parts := [][]data.Tuple{
		{mk(1, 5, 0), mk(1, 1, 0)},
		{mk(1, 3, 0), mk(1, 5, 0)}, // (5,0) shared with part 0
		{mk(1, 2, 0)},
	}
	union := data.NewRelation(rs)
	var views []Bucket
	for pi, ts := range parts {
		pr := data.NewRelation(rs)
		for _, tp := range ts {
			pr.MustInsert(tp...)
			// Cross-part duplicates are the interesting case; the union
			// relation's set semantics absorb them like a single node would.
			union.Insert(tp)
		}
		ix, err := Build(pr, x, y)
		if err != nil {
			t.Fatalf("part %d: %v", pi, err)
		}
		views = append(views, ix.Fetch([]value.Value{value.NewInt(1)}))
	}
	ref, err := Build(union, x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Fetch([]value.Value{value.NewInt(1)})

	got := MergeBuckets(views)
	if got.Len() != want.Len() {
		t.Fatalf("merged %d projections, want %d", got.Len(), want.Len())
	}
	var gb, wb []byte
	for i := 0; i < got.Len(); i++ {
		gb = got.AppendKeyOf(gb[:0], i)
		wb = want.AppendKeyOf(wb[:0], i)
		if !bytes.Equal(gb, wb) {
			t.Fatalf("merged projection %d differs: %q vs %q", i, gb, wb)
		}
	}
}
