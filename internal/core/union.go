package core

import (
	"fmt"

	"repro/internal/bep"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/posfo"
	"repro/internal/ucq"
)

// CheckBoundedUCQ runs the BEP checker on a union (Lemma 3.6).
func (e *Engine) CheckBoundedUCQ(u *ucq.UCQ) (*bep.UCQDecision, error) {
	return bep.DecideUCQ(u.Subs, e.Access, e.Schema, e.Opts.BEP)
}

// PlanUCQ synthesizes the bounded plan of a covered UCQ and its static
// bound; the plan conforms to the UCQ grammar of Section 2 (unions only as
// the trailing operations).
func (e *Engine) PlanUCQ(u *ucq.UCQ) (*plan.Plan, plan.Bound, error) {
	res, err := u.Covered(e.Access, e.Schema, e.Opts.Cover)
	if err != nil {
		return nil, plan.Bound{}, err
	}
	if !res.Covered {
		return nil, plan.Bound{}, fmt.Errorf("core: UCQ %s is not covered by the access schema", u.Label)
	}
	p, err := plan.BuildUCQ(res, e.Opts.Plan)
	if err != nil {
		return nil, plan.Bound{}, err
	}
	p.Label = u.Label
	if err := p.ConformsTo(plan.LangUCQ); err != nil {
		return nil, plan.Bound{}, fmt.Errorf("core: internal: %w", err)
	}
	sizeHint := 0
	if e.instance != nil {
		sizeHint = e.instance.Size()
	}
	b, err := plan.AccessBound(p, sizeHint)
	if err != nil {
		return nil, plan.Bound{}, err
	}
	return p, b, nil
}

// ExecuteUCQ answers a covered UCQ through its bounded plan, honoring
// Opts.Exec like Execute does. UCQ plans are not memoized in the plan
// cache (its canonical key covers single CQs only), so repeat UCQs pay
// synthesis each call.
func (e *Engine) ExecuteUCQ(u *ucq.UCQ) (*plan.Table, *plan.ExecStats, error) {
	if e.indexed == nil {
		return nil, nil, fmt.Errorf("core: no instance loaded")
	}
	p, _, err := e.PlanUCQ(u)
	if err != nil {
		return nil, nil, err
	}
	return plan.ExecuteOpts(p, e.indexed, e.Opts.Exec)
}

// ExecuteAutoUCQ answers a UCQ via its bounded plan when covered, falling
// back to conventional union evaluation otherwise.
func (e *Engine) ExecuteAutoUCQ(u *ucq.UCQ) (*AutoResult, error) {
	if e.instance == nil {
		return nil, fmt.Errorf("core: no instance loaded")
	}
	res, err := u.Covered(e.Access, e.Schema, e.Opts.Cover)
	if err != nil {
		return nil, err
	}
	if res.Covered {
		tbl, stats, err := e.ExecuteUCQ(u)
		if err != nil {
			return nil, err
		}
		return &AutoResult{Mode: ViaBoundedPlan, Rows: tbl.Rows, Fetched: stats.Fetched}, nil
	}
	r, err := u.Eval(e.instance, eval.HashJoin)
	if err != nil {
		return nil, err
	}
	return &AutoResult{Mode: ViaFullScan, Rows: r.Rows, Scanned: r.Scanned}, nil
}

// ExecutePosFO answers an ∃FO⁺ query by normalizing it to a UCQ first
// ("a query in ∃FO⁺ is equivalent to a query in UCQ", Section 3.1).
func (e *Engine) ExecutePosFO(q *posfo.Query) (*AutoResult, error) {
	subs, err := q.ToUCQ()
	if err != nil {
		return nil, err
	}
	u, err := ucq.New(q.Label, subs...)
	if err != nil {
		return nil, err
	}
	return e.ExecuteAutoUCQ(u)
}

// CoverageReport tallies BEP verdicts over a workload (the E4-style
// "how much of this application is boundedly evaluable" summary).
type CoverageReport struct {
	Total int
	// Covered counts queries covered as written.
	Covered int
	// Rewritten counts queries bounded only via an A-equivalent rewrite.
	Rewritten int
	// Empty counts A-unsatisfiable queries (bounded via the empty plan).
	Empty int
	// Unknown counts queries the checker could not bound.
	Unknown int
}

// Bounded returns how many queries are boundedly evaluable.
func (r CoverageReport) Bounded() int { return r.Covered + r.Rewritten + r.Empty }

// Rate returns the bounded fraction in [0, 1].
func (r CoverageReport) Rate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Bounded()) / float64(r.Total)
}

// ClassifyWorkload runs the BEP checker over every query and tallies the
// verdicts.
func (e *Engine) ClassifyWorkload(qs []*cq.CQ) (CoverageReport, error) {
	var r CoverageReport
	for _, q := range qs {
		r.Total++
		res, err := e.IsCovered(q)
		if err != nil {
			return r, err
		}
		if res.Covered {
			r.Covered++
			continue
		}
		dec, err := e.CheckBounded(q)
		if err != nil {
			return r, err
		}
		switch dec.Verdict {
		case bep.Bounded:
			r.Rewritten++
		case bep.BoundedEmpty:
			r.Empty++
		default:
			r.Unknown++
		}
	}
	return r, nil
}
