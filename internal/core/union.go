package core

import (
	"fmt"

	"repro/internal/bep"
	"repro/internal/cq"
	"repro/internal/plan"
	"repro/internal/ucq"
)

// CheckBoundedUCQ runs the BEP checker on a union (Lemma 3.6).
func (e *Engine) CheckBoundedUCQ(u *ucq.UCQ) (*bep.UCQDecision, error) {
	return bep.DecideUCQ(u.Subs, e.Access, e.Schema, e.Opts.BEP)
}

// PlanUCQ synthesizes the bounded plan of a covered UCQ and its static
// bound; the plan conforms to the UCQ grammar of Section 2 (unions only as
// the trailing operations).
//
// Outcomes are memoized in the plan cache keyed by the union's
// CanonicalKey (the sorted multiset of per-sub CQ keys), so repeat
// unions — including sub-query permutations and α-renamed variants —
// skip coverage checking and synthesis entirely.
func (e *Engine) PlanUCQ(u *ucq.UCQ) (*plan.Plan, plan.Bound, error) {
	p, b, _, err := e.planUCQCached(u, e.sizeHint())
	return p, b, err
}

// planUCQCached is PlanUCQ plus a cache-hit flag. Non-covered verdicts
// are cached too (as NotBoundedError entries), mirroring the CQ path.
func (e *Engine) planUCQCached(u *ucq.UCQ, sizeHint int) (*plan.Plan, plan.Bound, bool, error) {
	key := ""
	if e.cache != nil {
		// The "ucq:" prefix keeps union keys disjoint from CQ keys.
		key = "ucq:" + u.CanonicalKey()
		if ent, ok := e.cache.get(key); ok {
			if ent.notBounded != nil {
				// Copy so the refusal carries the caller's label without
				// mutating the shared cached entry.
				nb := *ent.notBounded
				nb.Label = u.Label
				return nil, plan.Bound{}, true, &nb
			}
			return relabel(ent.p, u.Label), ent.bound, true, nil
		}
	}
	p, b, err := e.planUCQUncached(u, sizeHint)
	if e.cache != nil {
		var nb *NotBoundedError
		switch {
		case err == nil:
			e.cache.put(&planEntry{key: key, p: p, bound: b})
		case asNotBounded(err, &nb):
			e.cache.put(&planEntry{key: key, notBounded: nb})
		}
	}
	return p, b, false, err
}

// planUCQUncached is the uncached union planning pipeline.
func (e *Engine) planUCQUncached(u *ucq.UCQ, sizeHint int) (*plan.Plan, plan.Bound, error) {
	res, err := u.Covered(e.Access, e.Schema, e.Opts.Cover)
	if err != nil {
		return nil, plan.Bound{}, err
	}
	if !res.Covered {
		return nil, plan.Bound{}, &NotBoundedError{UCQCover: res, Label: u.Label}
	}
	p, err := plan.BuildUCQ(res, e.Opts.Plan)
	if err != nil {
		return nil, plan.Bound{}, err
	}
	p.Label = u.Label
	if err := p.ConformsTo(plan.LangUCQ); err != nil {
		return nil, plan.Bound{}, fmt.Errorf("core: internal: %w", err)
	}
	b, err := plan.AccessBound(p, sizeHint)
	if err != nil {
		return nil, plan.Bound{}, err
	}
	return p, b, nil
}

// CoverageReport tallies BEP verdicts over a workload (the E4-style
// "how much of this application is boundedly evaluable" summary).
type CoverageReport struct {
	Total int
	// Covered counts queries covered as written.
	Covered int
	// Rewritten counts queries bounded only via an A-equivalent rewrite.
	Rewritten int
	// Empty counts A-unsatisfiable queries (bounded via the empty plan).
	Empty int
	// Unknown counts queries the checker could not bound.
	Unknown int
}

// Bounded returns how many queries are boundedly evaluable.
func (r CoverageReport) Bounded() int { return r.Covered + r.Rewritten + r.Empty }

// Rate returns the bounded fraction in [0, 1].
func (r CoverageReport) Rate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Bounded()) / float64(r.Total)
}

// ClassifyWorkload runs the BEP checker over every query and tallies the
// verdicts.
func (e *Engine) ClassifyWorkload(qs []*cq.CQ) (CoverageReport, error) {
	var r CoverageReport
	for _, q := range qs {
		r.Total++
		res, err := e.IsCovered(q)
		if err != nil {
			return r, err
		}
		if res.Covered {
			r.Covered++
			continue
		}
		dec, err := e.CheckBounded(q)
		if err != nil {
			return r, err
		}
		switch dec.Verdict {
		case bep.Bounded:
			r.Rewritten++
		case bep.BoundedEmpty:
			r.Empty++
		default:
			r.Unknown++
		}
	}
	return r, nil
}
