package core

import (
	"context"

	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/live"
	"repro/internal/plan"
	"repro/internal/specialize"
)

// Queryable is the serving surface shared by the single-node Engine and
// the hash-partitioned internal/shard engine. Callers that only serve
// traffic — cmd/bequery, cmd/bebench, the benchmarks — program against
// it, so switching a deployment from one engine to K shards is a
// constructor change (the -shards flag), not a call-site change.
//
// The contract every implementation honors:
//
//   - Query serves CQs, UCQs and ∃FO⁺ through one snapshot-consistent
//     view, with budgets, fallbacks, deadlines and streaming.
//   - Apply is all-or-nothing: a delta that would violate any
//     cardinality bound is rejected with a *live.ViolationError and has
//     no visible effect anywhere.
//   - Load replaces the dataset, validating D |= A first.
//   - Instance returns the current dataset (a sharded engine
//     materializes the union of its shards lazily); nil before Load.
//   - Stats/CacheStats aggregate across whatever the engine is made of.
type Queryable interface {
	Load(d *data.Instance) error
	Apply(ctx context.Context, delta *live.Delta) (*live.Result, error)
	Query(ctx context.Context, q Query, opts ...QueryOption) (*Result, error)
	Explain(q *cq.CQ, params []string) (string, error)
	IsCovered(q *cq.CQ) (*cover.Result, error)
	Plan(q *cq.CQ) (*plan.Plan, plan.Bound, error)
	Baseline(q *cq.CQ, mode eval.Mode) (*eval.Result, error)
	Specialize(q *cq.CQ, X []string, k int) (*specialize.Result, error)
	Instance() *data.Instance
	Stats() EngineStats
	CacheStats() CacheStats
}

// The single-node engine is a Queryable.
var _ Queryable = (*Engine)(nil)
