package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/eval"
	"repro/internal/workload"
)

// TestSnapshotPinnedUnderApply hammers the read entry points while a
// writer applies deltas, proving two things under -race:
//
//  1. Snapshot() never tears: the (instance, indexed) pair always comes
//     from one published version (ix.Instance == inst, pointer-equal),
//     however many Applies land meanwhile. The legacy pattern of calling
//     Instance() then Indexed() reads the snapshot pointer twice and CAN
//     straddle an Apply — the test counts how often it would have, which
//     is why Snapshot exists.
//  2. Baseline, Plan and Explain each resolve their snapshot exactly
//     once per call: every result is internally consistent with a single
//     version (Baseline's rows always match a fresh evaluation over the
//     instance Snapshot reports before-or-after, never a mix).
//
// The legacy two-call pattern below is the tear bevet's snapshottear
// analyzer exists to reject; this test measures it on purpose.
//
//bevet:allow snapshottear
func TestSnapshotPinnedUnderApply(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 2, AccidentsPerDay: 10, MaxVehicles: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(acc.Schema, acc.Access, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(acc.Instance); err != nil {
		t.Fatal(err)
	}
	st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
		InsertAccidents: 3, DeleteAccidents: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var torn atomic.Int64
	var wg sync.WaitGroup
	q := workload.Q0()

	// Writer: applies stream batches back to back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := eng.Apply(context.Background(), st.Next()); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Readers: pinned entry points must never observe a mixed version.
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 150; i++ {
				inst, ix := eng.Snapshot()
				if ix.Instance != inst {
					t.Error("Snapshot returned pieces of two versions")
					return
				}
				// The legacy two-call pattern: count (don't fail on) the
				// tears it permits, demonstrating why it was retired.
				if eng.Instance() != eng.Indexed().Instance {
					torn.Add(1)
				}
				if _, err := eng.Baseline(q, eval.HashJoin); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := eng.Plan(q); err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.Explain(q, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	wg.Wait()
	if n := torn.Load(); n > 0 {
		t.Logf("legacy Instance()/Indexed() pattern tore %d times (Snapshot tore 0)", n)
	}
}
