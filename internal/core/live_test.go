package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/live"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/workload"
)

func TestApplyBasicVisibility(t *testing.T) {
	eng := accidentsEngine(t, Options{}, 2)
	q := workload.Q0()
	before, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	// Insert one more Queen's Park accident on the Q0 date, with a driver
	// of a brand-new age, and check the new answer appears.
	delta := live.NewDelta(eng.Schema)
	delta.MustInsert("Accident", value.NewInt(900001), value.NewString("Queen's Park"), value.NewString("1/5/2005"))
	delta.MustInsert("Casualty", value.NewInt(900001), value.NewInt(900001), value.NewInt(1), value.NewInt(900001))
	delta.MustInsert("Vehicle", value.NewInt(900001), value.NewString("zed"), value.NewInt(2001))
	res, err := eng.Apply(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 3 || res.Deleted != 0 {
		t.Fatalf("net effect +%d -%d, want +3 -0", res.Inserted, res.Deleted)
	}
	after, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(before.Rows)+1 {
		t.Fatalf("rows: %d before, %d after", len(before.Rows), len(after.Rows))
	}
	found := false
	for _, r := range after.Rows {
		if r[0] == value.NewInt(2001) {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted driver age missing from post-delta answer")
	}
	// The cached plan served both sides of the update.
	if !after.Stats.CacheHit {
		t.Fatal("post-delta query must still hit the plan cache")
	}
}

func TestApplyRejectedLeavesEngineIntact(t *testing.T) {
	eng := accidentsEngine(t, Options{}, 2)
	q := workload.Q0()
	before, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// 611 accidents on one fresh date violate ψ1 (≤ 610 aids per date).
	delta := live.NewDelta(eng.Schema)
	for i := int64(0); i < 611; i++ {
		delta.MustInsert("Accident", value.NewInt(800000+i), value.NewString("Soho"), value.NewString("bad-day"))
	}
	_, err = eng.Apply(context.Background(), delta)
	var ve *live.ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("want ViolationError, got %v", err)
	}
	if !strings.Contains(err.Error(), "610") {
		t.Errorf("violation should carry the bound: %v", err)
	}
	after, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(before.Rows) {
		t.Fatal("rejected delta changed query answers")
	}
	if eng.Instance().Relation("Accident").Contains(data.Tuple{
		value.NewInt(800000), value.NewString("Soho"), value.NewString("bad-day"),
	}) {
		t.Fatal("rejected delta left tuples behind")
	}
}

func TestApplyWithoutLoad(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.DefaultAccidentConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(acc.Schema, acc.Access, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), live.NewDelta(acc.Schema)); err == nil {
		t.Fatal("Apply before Load must fail")
	}
	if _, err := eng.Apply(context.Background(), nil); err == nil {
		t.Fatal("nil delta must fail")
	}
}

// keyedEngine serves a two-relation schema where R(A -> B, 1) is a key:
// the query "B of A=1" always has exactly one answer in any D |= A. The
// scan-path relation S is unconstrained traffic for the same test.
func keyedEngine(t testing.TB) *Engine {
	t.Helper()
	s := schema.MustNew(
		schema.MustRelation("R", "A", "B"),
		schema.MustRelation("S", "C", "D"),
	)
	a := access.NewSchema(
		access.NewConstraint("R", []schema.Attribute{"A"}, []schema.Attribute{"B"}, 1),
	)
	eng, err := New(s, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := data.NewInstance(s)
	d.MustInsert("R", value.NewInt(1), value.NewInt(0))
	for i := int64(0); i < 50; i++ {
		d.MustInsert("S", value.NewInt(i), value.NewInt(i%5))
	}
	if err := eng.Load(d); err != nil {
		t.Fatal(err)
	}
	return eng
}

// fetchB is the bounded query: B of R where A = 1.
func fetchB() *cq.CQ {
	return &cq.CQ{Label: "fetchB", Free: []string{"b"},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("a"), cq.Var("b"))},
		Eqs:   []cq.Eq{{L: cq.Var("a"), R: cq.Const(value.NewInt(1))}}}
}

// scanS is the scan-path query: all (C, D) pairs of S (not bounded).
func scanS() *cq.CQ {
	return &cq.CQ{Label: "scanS", Free: []string{"c", "d"},
		Atoms: []cq.Atom{cq.NewAtom("S", cq.Var("c"), cq.Var("d"))}}
}

// TestApplySnapshotIsolationRace is the acceptance check for the live
// subsystem: many concurrent readers during a stream of Applies, each
// request observing one consistent snapshot — pre- or post-delta, never
// a mix — on both the bounded (index) and scan (instance) paths. Run
// with -race this also proves the memory-model side.
func TestApplySnapshotIsolationRace(t *testing.T) {
	eng := keyedEngine(t)
	qb, qs := fetchB(), scanS()

	// Warm the plan cache before racing.
	if _, err := eng.Query(context.Background(), qb, WithFallback(FallbackRefuse)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(context.Background(), qs); err != nil {
		t.Fatal(err)
	}

	const applies = 200
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writer: each delta atomically moves the key tuple R(1, k) to
	// R(1, k+1) AND swap-replaces one S tuple, keeping |R_{A=1}| = 1 and
	// |S| = 50 invariant in every published snapshot. A torn read would
	// surface as 0 or 2 key rows, or 49 or 51 scan rows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for k := int64(0); k < applies; k++ {
			delta := live.NewDelta(eng.Schema)
			delta.MustDelete("R", value.NewInt(1), value.NewInt(k))
			delta.MustInsert("R", value.NewInt(1), value.NewInt(k+1))
			delta.MustDelete("S", value.NewInt(k%50), value.NewInt((k%50)%5))
			delta.MustInsert("S", value.NewInt(k%50), value.NewInt((k%50)%5+100))
			if _, err := eng.Apply(context.Background(), delta); err != nil {
				report(fmt.Errorf("apply %d: %w", k, err))
				return
			}
			// Keep S's replaced tuple stable for the next round.
			delta2 := live.NewDelta(eng.Schema)
			delta2.MustDelete("S", value.NewInt(k%50), value.NewInt((k%50)%5+100))
			delta2.MustInsert("S", value.NewInt(k%50), value.NewInt((k%50)%5))
			if _, err := eng.Apply(context.Background(), delta2); err != nil {
				report(fmt.Errorf("apply %d (restore): %w", k, err))
				return
			}
		}
	}()

	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for !stop.Load() {
				if g%2 == 0 {
					res, err := eng.Query(context.Background(), qb, WithFallback(FallbackRefuse))
					if err != nil {
						report(fmt.Errorf("reader %d: %w", g, err))
						return
					}
					if len(res.Rows) != 1 {
						report(fmt.Errorf("reader %d: torn bounded read: %d key rows", g, len(res.Rows)))
						return
					}
				} else {
					res, err := eng.Query(context.Background(), qs)
					if err != nil {
						report(fmt.Errorf("reader %d: %w", g, err))
						return
					}
					if len(res.Rows) != 50 {
						report(fmt.Errorf("reader %d: torn scan read: %d rows", g, len(res.Rows)))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// No stragglers: the serving goroutines unwound.
	deadline := time.Now().Add(2 * time.Second)
	base := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		if n := runtime.NumGoroutine(); n <= base {
			break
		}
		runtime.Gosched()
	}
}

// TestStreamedQueryKeepsItsSnapshot: a WithStream result drained AFTER
// later Applies must still see the snapshot of its Query call.
func TestStreamedQueryKeepsItsSnapshot(t *testing.T) {
	eng := keyedEngine(t)
	qs := scanS()
	res, err := eng.Query(context.Background(), qs, WithStream())
	if err != nil {
		t.Fatal(err)
	}
	// Mutate S heavily after planning but before draining.
	delta := live.NewDelta(eng.Schema)
	for i := int64(0); i < 50; i++ {
		delta.MustDelete("S", value.NewInt(i), value.NewInt(i%5))
	}
	if _, err := eng.Apply(context.Background(), delta); err != nil {
		t.Fatal(err)
	}
	if got := eng.Instance().Relation("S").Len(); got != 0 {
		t.Fatalf("S should be empty post-delta, has %d", got)
	}
	n := 0
	for range res.Seq() {
		n++
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("streamed result saw %d rows, want the pre-delta 50", n)
	}
}

// TestPropertyApplyEqualsReloadRandomCQs drives the accidents update
// stream through Engine.Apply and checks, with a workload of random CQs
// (bounded and not), that the incrementally maintained engine answers
// exactly like an engine freshly loaded with the same final data.
func TestPropertyApplyEqualsReloadRandomCQs(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 4, AccidentsPerDay: 10, MaxVehicles: 4, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(acc.Schema, acc.Access, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(acc.Instance); err != nil {
		t.Fatal(err)
	}
	st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
		InsertAccidents: 5, DeleteAccidents: 2, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 25; b++ {
		if _, err := eng.Apply(context.Background(), st.Next()); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}

	fresh, err := New(acc.Schema, acc.Access, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Load(eng.Instance()); err != nil {
		t.Fatalf("final instance must satisfy A: %v", err)
	}

	consts := map[schema.Attribute][]cq.Term{
		"date":     {cq.Const(value.NewString(workload.DateName(0))), cq.Const(value.NewString(workload.DateName(5)))},
		"district": {cq.Const(value.NewString(workload.Districts[0]))},
		"aid":      {cq.Const(value.NewInt(3))},
		"vid":      {cq.Const(value.NewInt(5))},
	}
	qs, err := workload.RandomCQs(acc.Schema, workload.RandomCQConfig{
		Queries: 40, MaxAtoms: 3, StartProb: 0.8, FreeVars: 2, Seed: 23,
	}, consts)
	if err != nil {
		t.Fatal(err)
	}
	qs = append(qs, workload.Q0())
	for _, q := range qs {
		a, aerr := eng.Query(context.Background(), q)
		b, berr := fresh.Query(context.Background(), q)
		if (aerr == nil) != (berr == nil) {
			t.Fatalf("%s: incremental err=%v, reload err=%v", q.Label, aerr, berr)
		}
		if aerr != nil {
			continue
		}
		if a.Mode != b.Mode {
			t.Fatalf("%s: mode %v incrementally, %v reloaded", q.Label, a.Mode, b.Mode)
		}
		if !sameRowSet(a.Rows, b.Rows) {
			t.Fatalf("%s: %d rows incrementally, %d reloaded", q.Label, len(a.Rows), len(b.Rows))
		}
	}
}
