package core

import (
	"context"
	"fmt"
	"iter"
	"time"

	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/envelope"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/posfo"
	"repro/internal/ucq"
)

// Query is any query the engine can serve through Engine.Query: a
// conjunctive query (*cq.CQ), a union (*ucq.UCQ), or a positive
// existential FO formula (*posfo.Query). Implementations outside those
// three are served through their UCQ normal form (QueryCQs).
type Query interface {
	// QueryLabel names the query for results and diagnostics.
	QueryLabel() string
	// QueryCQs returns the query's UCQ normal form — the CQ sub-queries
	// whose union is equivalent to the query.
	QueryCQs() ([]*cq.CQ, error)
}

// FallbackMode says what Engine.Query does when a query is not boundedly
// evaluable under the access schema.
type FallbackMode int

const (
	// FallbackScan (the default) answers by conventional evaluation —
	// the Conclusion's "compute exact answers directly" branch. A full
	// scan has no static access bound, so it is refused when the caller
	// set an access budget.
	FallbackScan FallbackMode = iota
	// FallbackRefuse returns the NotBoundedError instead of answering.
	FallbackRefuse
	// FallbackEnvelope answers via a covered upper envelope Qu ⊇ Q when
	// one exists (Section 4), refusing otherwise. Envelope search is
	// defined per CQ; unions fall back to refusal.
	FallbackEnvelope
)

func (m FallbackMode) String() string {
	switch m {
	case FallbackScan:
		return "scan"
	case FallbackRefuse:
		return "refuse"
	case FallbackEnvelope:
		return "envelope"
	default:
		return fmt.Sprintf("fallback(%d)", int(m))
	}
}

// Stats is the unified per-request accounting of Engine.Query, covering
// both serving paths.
type Stats struct {
	// Fetched counts tuples retrieved via indices (bounded path); it is
	// at most Bound.Fetched.
	Fetched int64
	// Scanned counts tuples read by the conventional evaluator (scan
	// path).
	Scanned int64
	// FetchKeys counts distinct index lookups (bounded path).
	FetchKeys int64
	// CacheHit reports whether the plan came from the plan cache.
	CacheHit bool
	// Elapsed is the wall-clock serving time. For a streamed result it
	// initially covers planning and admission only, and is extended to
	// the full request once the row iterator is drained.
	Elapsed time.Duration
}

// Result is Engine.Query's one answer shape, regardless of query class
// and serving mode.
type Result struct {
	// Query is the served query's label.
	Query string
	// Mode says which of the paper's strategies answered the query.
	Mode Mode
	// Columns names the output columns in every mode — the free-variable
	// tuple for scans, the plan's output columns otherwise.
	Columns []string
	// Plan is the bounded plan used (ViaBoundedPlan, ViaUpperEnvelope);
	// nil for scans.
	Plan *plan.Plan
	// Bound is Plan's static worst-case access bound; nil for scans.
	Bound *plan.Bound
	// Envelope is the covered relaxation answered (ViaUpperEnvelope
	// only): its answers contain Q's with |Qu(D) − Q(D)| ≤ Nu.
	Envelope *envelope.Upper
	// Rows is the materialized answer set. It is nil when the query ran
	// with WithStream — consume Seq instead.
	Rows []data.Tuple
	// Stats is the request's unified accounting.
	Stats Stats

	stream func(yield func(data.Tuple) bool)
	err    error
}

// Seq returns the answer rows as a streaming iterator. For a materialized
// result it ranges over Rows. For a streamed result (WithStream) the
// first Seq call executes the plan, yielding final-step rows as they are
// produced without ever materializing the answer table; Stats and Err are
// final once the iterator stops, and the iterator is single-use.
func (r *Result) Seq() iter.Seq[data.Tuple] {
	if r.stream != nil {
		run := r.stream
		r.stream = nil
		return func(yield func(data.Tuple) bool) { run(yield) }
	}
	return func(yield func(data.Tuple) bool) {
		for _, row := range r.Rows {
			if !yield(row) {
				return
			}
		}
	}
}

// Err reports a deferred execution error of a streamed result (for
// example a context canceled mid-stream): when non-nil, the yielded rows
// were cut short. Materialized results always return nil — their errors
// surface from Query itself.
func (r *Result) Err() error { return r.err }

// BudgetError is the admission-control refusal: the request's access
// budget cannot be guaranteed, so no data was touched at all.
type BudgetError struct {
	// Query is the refused query's label.
	Query string
	// Budget is the caller's WithAccessBudget value.
	Budget int64
	// Bound is the plan's static bound when one exists; nil when the
	// query is not boundedly evaluable (a scan has no static bound).
	Bound *plan.Bound
}

func (e *BudgetError) Error() string {
	if e.Bound != nil {
		return fmt.Sprintf("core: query %s refused: static access bound %d exceeds the access budget %d",
			e.Query, e.Bound.Fetched, e.Budget)
	}
	return fmt.Sprintf("core: query %s refused: not boundedly evaluable, so no static access bound fits the access budget %d",
		e.Query, e.Budget)
}

// queryConfig is the per-request tuning assembled from QueryOptions.
type queryConfig struct {
	exec     plan.ExecOptions
	budget   int64 // < 0: no budget
	fallback FallbackMode
	deadline time.Time
	stream   bool
}

// QueryOption tunes one Engine.Query call.
type QueryOption func(*queryConfig)

// WithWorkers bounds the worker goroutines this request's plan execution
// may use (overriding Options.Exec.Workers): 0 or 1 runs sequentially, a
// negative value uses GOMAXPROCS.
func WithWorkers(n int) QueryOption {
	return func(c *queryConfig) { c.exec.Workers = n }
}

// WithAccessBudget admits the request only if the engine can guarantee at
// most n tuples are fetched: the paper's static access bound becomes an
// admission-control knob. When the bound exceeds n — or no bound exists
// and the fallback would scan — Query refuses with a *BudgetError before
// touching any data.
func WithAccessBudget(n int64) QueryOption {
	return func(c *queryConfig) { c.budget = n }
}

// WithFallback selects the strategy for queries that are not boundedly
// evaluable; the default is FallbackScan.
func WithFallback(m FallbackMode) QueryOption {
	return func(c *queryConfig) { c.fallback = m }
}

// WithDeadline bounds the request's execution wall-clock: past t the
// executor observes context.DeadlineExceeded and stops. It composes with
// (and never extends) a deadline already carried by ctx.
func WithDeadline(t time.Time) QueryOption {
	return func(c *queryConfig) { c.deadline = t }
}

// WithStream defers row production: Query returns after planning and
// admission with Rows nil, and the first Result.Seq call executes the
// plan, yielding rows as they are produced without materializing the
// answer table. The ctx passed to Query must stay valid until the
// iterator is drained.
func WithStream() QueryOption {
	return func(c *queryConfig) { c.stream = true }
}

// applyDeadline derives the execution context carrying the request
// deadline, if one was set.
func (c *queryConfig) applyDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.deadline.IsZero() {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, c.deadline)
}

func errNoInstance() error { return fmt.Errorf("core: no instance loaded") }

// View describes the data a request executes against: the dataset size
// |D| that planning and general-form bounds use, the fetch-resolution
// source bounded plans execute through, and the instance the fallback
// scan evaluates. Engine.Query assembles a View from the engine's own
// snapshot; a coordinator (internal/shard) assembles one from externally
// held, hash-partitioned data and serves it through QueryView, reusing
// all of the engine's planning, admission, fallback and streaming logic.
type View struct {
	// Size is |D| of the viewed dataset.
	Size int
	// Source resolves each fetch step's access constraint.
	Source plan.Source
	// Instance returns the instance scans evaluate. It may be expensive
	// (a sharded coordinator materializes the union of its shards
	// lazily), so it is only called when a scan actually runs, and it
	// must observe ctx so a canceled request does not pay for a merge
	// nobody will read.
	Instance func(ctx context.Context) (*data.Instance, error)
}

// viewOf builds the single-node View over one pinned snapshot.
func viewOf(sn *snapshot) *View {
	return &View{
		Size:     sn.instance.Size(),
		Source:   plan.NewSource(sn.indexed),
		Instance: func(context.Context) (*data.Instance, error) { return sn.instance, nil },
	}
}

// Query is the engine's one serving entry point: it answers q — a CQ, a
// UCQ, or an ∃FO⁺ query — with the strategy the paper's Conclusion
// prescribes. The bounded plan is used when the query is boundedly
// evaluable (memoized in the plan cache across calls); otherwise the
// configured fallback answers it: a conventional scan (default), an
// upper envelope, or a refusal.
//
// ctx cancels in-flight execution: the parallel worker pool and the scan
// evaluator observe it periodically, stop, and Query returns the
// context's error (wrapped; test with errors.Is). Per-call tuning comes
// from functional options: WithWorkers, WithAccessBudget, WithFallback,
// WithDeadline, WithStream.
//
// Query is safe for concurrent use after Load, like every read entry
// point of the Engine. The snapshot is acquired once, up front:
// everything the request reads — indices on the bounded path, the
// instance on the scan path, even rows produced after Query returns by a
// streamed result — comes from that one consistent version, however many
// updates are applied meanwhile.
func (e *Engine) Query(ctx context.Context, q Query, opts ...QueryOption) (*Result, error) {
	if q == nil {
		return nil, fmt.Errorf("core: nil query")
	}
	sn := e.current()
	if sn == nil {
		return nil, errNoInstance()
	}
	return e.QueryView(ctx, q, viewOf(sn), opts...)
}

// QueryView is Query against an externally assembled data view — the
// coordinator hook internal/shard serves through. The caller owns the
// view's consistency: Size, Source and Instance must all describe the
// same dataset version.
func (e *Engine) QueryView(ctx context.Context, q Query, v *View, opts ...QueryOption) (*Result, error) {
	if q == nil {
		return nil, fmt.Errorf("core: nil query")
	}
	if v == nil || v.Source == nil {
		return nil, fmt.Errorf("core: nil view")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.queries.Add(1)
	start := time.Now()
	cfg := queryConfig{exec: e.Opts.Exec, budget: -1}
	for _, opt := range opts {
		opt(&cfg)
	}
	switch qv := q.(type) {
	case *cq.CQ:
		return e.serveCQ(ctx, start, qv, cfg, v)
	case *ucq.UCQ:
		return e.serveUCQ(ctx, start, qv, cfg, v)
	case *posfo.Query:
		// "A query in ∃FO⁺ is equivalent to a query in UCQ" (Section
		// 3.1): normalize, then serve the normal form.
		subs, err := qv.ToUCQ()
		if err != nil {
			return nil, err
		}
		return e.serveSubs(ctx, start, qv.Label, subs, cfg, v)
	default:
		subs, err := q.QueryCQs()
		if err != nil {
			return nil, err
		}
		return e.serveSubs(ctx, start, q.QueryLabel(), subs, cfg, v)
	}
}

// serveSubs serves a query through its UCQ normal form. A single-disjunct
// normal form goes through the full CQ pipeline (BEP rewrites included) —
// the same strategy whatever Go type the query arrived in; only an
// explicit *ucq.UCQ keeps union planning for a one-sub union.
func (e *Engine) serveSubs(ctx context.Context, start time.Time, label string, subs []*cq.CQ, cfg queryConfig, v *View) (*Result, error) {
	if len(subs) == 1 {
		single := subs[0]
		if single.Label != label {
			single = single.Clone()
			single.Label = label
		}
		return e.serveCQ(ctx, start, single, cfg, v)
	}
	u, err := ucq.New(label, subs...)
	if err != nil {
		return nil, err
	}
	return e.serveUCQ(ctx, start, u, cfg, v)
}

// endPlanSpan closes a plan-phase span with its cache verdict. The
// profile's "plan" span covers boundedness analysis, plan synthesis and
// the cache lookup that may short-circuit both.
func endPlanSpan(sp *obs.Span, hit bool, err error) {
	switch {
	case sp == nil:
	case err != nil:
		sp.SetDetail("no bounded plan")
	case hit:
		sp.SetDetail("cache hit")
	default:
		sp.SetDetail("cache miss")
	}
	sp.End()
}

// serveCQ serves a single conjunctive query against one data view.
func (e *Engine) serveCQ(ctx context.Context, start time.Time, q *cq.CQ, cfg queryConfig, v *View) (*Result, error) {
	tr := obs.FromContext(ctx)
	psp := tr.Start("plan")
	p, b, _, hit, err := e.planWithDecision(q, v.Size)
	endPlanSpan(psp, hit, err)
	if err == nil {
		if cfg.budget >= 0 && b.Fetched > cfg.budget {
			return nil, &BudgetError{Query: q.Label, Budget: cfg.budget, Bound: &b}
		}
		return e.runBounded(ctx, start, v.Source, ViaBoundedPlan, p, &b, hit, nil, cfg)
	}
	var nb *NotBoundedError
	if !asNotBounded(err, &nb) {
		return nil, err
	}
	switch cfg.fallback {
	case FallbackRefuse:
		return nil, err
	case FallbackEnvelope:
		esp := tr.Start("plan.envelope")
		pu, bu, up, hitU, eerr := e.envelopePlanCached(q, v.Size)
		endPlanSpan(esp, hitU, eerr)
		if eerr != nil {
			// The search itself failed (e.g. too many atoms for the
			// relaxation search) — that diagnostic beats the generic
			// not-bounded refusal.
			return nil, eerr
		}
		if up == nil {
			return nil, err
		}
		if cfg.budget >= 0 && bu.Fetched > cfg.budget {
			return nil, &BudgetError{Query: q.Label, Budget: cfg.budget, Bound: &bu}
		}
		res, rerr := e.runBounded(ctx, start, v.Source, ViaUpperEnvelope, pu, &bu, hitU, up, cfg)
		if rerr != nil {
			return nil, rerr
		}
		// The result reports the submitted query, not the synthesized
		// relaxation (whose own label lives in Envelope.Qu and Plan).
		res.Query = q.Label
		return res, nil
	default: // FallbackScan
		if cfg.budget >= 0 {
			return nil, &BudgetError{Query: q.Label, Budget: cfg.budget}
		}
		return e.runScan(ctx, start, q.Label, q.Free, cfg, func(sctx context.Context) (*eval.Result, error) {
			inst, err := v.Instance(sctx)
			if err != nil {
				return nil, err
			}
			return eval.CQCtx(sctx, q, inst, eval.HashJoin)
		})
	}
}

// envelopePlanCached memoizes the upper-envelope serving path for a
// not-bounded query shape: the envelope search (several coverage probes)
// and Qu's plan synthesis both run once per shape, under an "env:" cache
// entry. A nil returned envelope with a nil error means none exists
// (that verdict is cached too); errors — from the search or from
// planning Qu — are surfaced and never cached, so a transient failure
// does not poison the shape.
func (e *Engine) envelopePlanCached(q *cq.CQ, sizeHint int) (*plan.Plan, plan.Bound, *envelope.Upper, bool, error) {
	key := ""
	if e.cache != nil {
		key = "env:" + q.CanonicalKey()
		if ent, ok := e.cache.get(key); ok {
			return ent.p, ent.bound, ent.envelope, true, nil
		}
	}
	up, err := e.UpperEnvelope(q)
	if err != nil {
		return nil, plan.Bound{}, nil, false, err
	}
	if !up.Found {
		if e.cache != nil {
			e.cache.put(&planEntry{key: key}) // negative: no envelope
		}
		return nil, plan.Bound{}, nil, false, nil
	}
	pu, bu, _, _, perr := e.planWithDecision(up.Qu, sizeHint)
	if perr != nil {
		return nil, plan.Bound{}, nil, false, perr
	}
	if e.cache != nil {
		e.cache.put(&planEntry{key: key, p: pu, bound: bu, envelope: up})
	}
	return pu, bu, up, false, nil
}

// serveUCQ serves a union of conjunctive queries, against one data view
// like serveCQ.
func (e *Engine) serveUCQ(ctx context.Context, start time.Time, u *ucq.UCQ, cfg queryConfig, v *View) (*Result, error) {
	tr := obs.FromContext(ctx)
	psp := tr.Start("plan")
	p, b, hit, err := e.planUCQCached(u, v.Size)
	endPlanSpan(psp, hit, err)
	if err == nil {
		if cfg.budget >= 0 && b.Fetched > cfg.budget {
			return nil, &BudgetError{Query: u.Label, Budget: cfg.budget, Bound: &b}
		}
		return e.runBounded(ctx, start, v.Source, ViaBoundedPlan, p, &b, hit, nil, cfg)
	}
	var nb *NotBoundedError
	if !asNotBounded(err, &nb) {
		return nil, err
	}
	switch cfg.fallback {
	case FallbackRefuse, FallbackEnvelope:
		// Envelope search is per-CQ; a non-covered union is refused.
		return nil, err
	default: // FallbackScan
		if cfg.budget >= 0 {
			return nil, &BudgetError{Query: u.Label, Budget: cfg.budget}
		}
		return e.runScan(ctx, start, u.Label, u.Subs[0].Free, cfg, func(sctx context.Context) (*eval.Result, error) {
			inst, err := v.Instance(sctx)
			if err != nil {
				return nil, err
			}
			return eval.UCQCtx(sctx, u.Subs, inst, eval.HashJoin)
		})
	}
}

// runBounded executes a bounded plan against src, materialized or
// streamed.
func (e *Engine) runBounded(ctx context.Context, start time.Time, src plan.Source, mode Mode, p *plan.Plan, b *plan.Bound, cacheHit bool, up *envelope.Upper, cfg queryConfig) (*Result, error) {
	res := &Result{
		Query:    p.Label,
		Mode:     mode,
		Columns:  append([]string(nil), p.OutCols...),
		Plan:     p,
		Bound:    b,
		Envelope: up,
	}
	res.Stats.CacheHit = cacheHit
	if cfg.stream {
		res.stream = func(yield func(data.Tuple) bool) {
			sctx, cancel := cfg.applyDeadline(ctx)
			defer cancel()
			st, err := plan.ExecuteStreamSource(sctx, p, src, cfg.exec, yield)
			if st != nil {
				res.Stats.Fetched, res.Stats.FetchKeys = st.Fetched, st.FetchKeys
				e.fetched.Add(st.Fetched)
			}
			res.err = err
			res.Stats.Elapsed = time.Since(start)
		}
		res.Stats.Elapsed = time.Since(start)
		return res, nil
	}
	sctx, cancel := cfg.applyDeadline(ctx)
	defer cancel()
	tbl, st, err := plan.ExecuteSource(sctx, p, src, cfg.exec)
	if err != nil {
		return nil, err
	}
	res.Rows = tbl.Rows
	res.Stats.Fetched, res.Stats.FetchKeys = st.Fetched, st.FetchKeys
	e.fetched.Add(st.Fetched)
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// emitStride is how many buffered scan rows a streamed emission loop
// yields between context checks. The evaluator itself observes ctx while
// computing the answer, but emission can dwarf evaluation when the
// consumer is slow (a network write per row), so the emit loop must
// observe cancellation too — otherwise a request overruns its deadline
// for as long as the consumer keeps reading.
const emitStride = 256

// runScan answers through the conventional evaluator, materialized or
// streamed. Scan answers are deduplicated and sorted before they can be
// emitted, so a streamed scan defers the evaluation but still buffers
// internally.
func (e *Engine) runScan(ctx context.Context, start time.Time, label string, cols []string, cfg queryConfig, evalFn func(context.Context) (*eval.Result, error)) (*Result, error) {
	res := &Result{
		Query:   label,
		Mode:    ViaFullScan,
		Columns: append([]string(nil), cols...),
	}
	if cfg.stream {
		res.stream = func(yield func(data.Tuple) bool) {
			sctx, cancel := cfg.applyDeadline(ctx)
			defer cancel()
			sp := obs.FromContext(ctx).Start("scan")
			r, err := evalFn(sctx)
			if err != nil {
				sp.End()
				res.err = err
				res.Stats.Elapsed = time.Since(start)
				return
			}
			// Scanned lives on the child eval.cq spans (one per sub-CQ,
			// so a union's breakdown is visible); duplicating it here
			// would double-count in any tree sum.
			sp.SetRows(int64(len(r.Rows)))
			sp.End()
			res.Stats.Scanned = r.Scanned
			e.scanned.Add(r.Scanned)
			for i, row := range r.Rows {
				if i%emitStride == 0 && sctx.Err() != nil {
					res.err = fmt.Errorf("core: scan stream cut after %d of %d rows: %w",
						i, len(r.Rows), sctx.Err())
					break
				}
				if !yield(row) {
					break
				}
			}
			res.Stats.Elapsed = time.Since(start)
		}
		res.Stats.Elapsed = time.Since(start)
		return res, nil
	}
	sctx, cancel := cfg.applyDeadline(ctx)
	defer cancel()
	sp := obs.FromContext(ctx).Start("scan")
	r, err := evalFn(sctx)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetRows(int64(len(r.Rows)))
	sp.End()
	res.Rows = r.Rows
	res.Stats.Scanned = r.Scanned
	e.scanned.Add(r.Scanned)
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}
