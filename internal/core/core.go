// Package core is the public face of the bounded-evaluation system: one
// Engine that ties together the paper's pipeline —
//
//	check coverage (Theorem 3.11)    →  IsCovered
//	decide bounded evaluability      →  CheckBounded (BEP)
//	synthesize a bounded query plan  →  Plan
//	execute with access accounting   →  Execute / ExecuteAuto
//	approximate when not bounded     →  UpperEnvelope / LowerEnvelope (UEP/LEP)
//	specialize parameterized queries →  Specialize (QSP)
//
// This is the strategy the paper's Conclusion prescribes: maintain an
// access schema A; for each query, compute exact answers by accessing a
// bounded amount of data when Q is covered/bounded, and otherwise fall
// back to envelopes or user-driven specialization.
package core

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/bep"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/envelope"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/specialize"
)

// Options configures an Engine; the zero value is sensible.
type Options struct {
	Cover      cover.Options
	BEP        bep.Options
	Envelope   envelope.Options
	Specialize specialize.Options
	Plan       plan.BuildOptions
	// Exec configures plan execution; Exec.Workers > 1 fans bounded
	// fetches and hash joins out across a worker pool.
	Exec plan.ExecOptions
	// PlanCache sizes the LRU plan cache: 0 means DefaultPlanCacheSize,
	// negative disables caching.
	PlanCache int
}

// Engine couples a relational schema, an access schema, and (after Load)
// an indexed instance.
//
// Concurrency: after Load returns, the Engine is safe for concurrent
// readers — IsCovered, CheckBounded, Plan, Execute, ExecuteAuto, Baseline,
// Explain and the envelope/specialize entry points may all be called from
// many goroutines at once. The instance and its indices are read-only
// after Load, and the plan cache serializes its own state internally.
// Load itself is a writer: it must not race with in-flight queries; call
// it before serving, or quiesce queries around a reload.
type Engine struct {
	Schema *schema.Schema
	Access *access.Schema
	Opts   Options

	instance *data.Instance
	indexed  *access.Indexed
	cache    *planCache
}

// New builds an engine, validating the access schema against the
// relational schema.
func New(s *schema.Schema, a *access.Schema, opts Options) (*Engine, error) {
	if err := a.Validate(s); err != nil {
		return nil, err
	}
	size := opts.PlanCache
	if size == 0 {
		size = DefaultPlanCacheSize
	}
	return &Engine{Schema: s, Access: a, Opts: opts, cache: newPlanCache(size)}, nil
}

// Load attaches an instance: it builds every index in A and verifies
// D |= A, failing with the list of violations otherwise. Loading
// invalidates the plan cache — cached static bounds embed the previous
// instance's size hint. Load must not race with concurrent queries.
func (e *Engine) Load(d *data.Instance) error {
	ix, viols, err := access.BuildIndexed(e.Access, d)
	if err != nil {
		return err
	}
	if len(viols) > 0 {
		return fmt.Errorf("core: instance violates the access schema: %v (first of %d)", viols[0], len(viols))
	}
	e.instance = d
	e.indexed = ix
	e.cache.purge()
	return nil
}

// CacheStats reports plan-cache hit/miss counters since the last Load.
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// Instance returns the loaded instance, or nil.
func (e *Engine) Instance() *data.Instance { return e.instance }

// Indexed returns the indexed instance built by Load, or nil. The indices
// are read-only after Load and safe for concurrent use.
func (e *Engine) Indexed() *access.Indexed { return e.indexed }

// IsCovered runs the PTIME covered-query check with diagnostics.
func (e *Engine) IsCovered(q *cq.CQ) (*cover.Result, error) {
	return cover.Check(q, e.Access, e.Schema, e.Opts.Cover)
}

// IsCoveredUCQ runs the UCQ/∃FO⁺ covered check (covered or dominated subs).
func (e *Engine) IsCoveredUCQ(qs []*cq.CQ) (*cover.UCQResult, error) {
	return cover.CheckUCQ(qs, e.Access, e.Schema, e.Opts.Cover)
}

// CheckBounded runs the BEP checker (coverage + A-equivalent rewrites).
func (e *Engine) CheckBounded(q *cq.CQ) (*bep.Decision, error) {
	return bep.Decide(q, e.Access, e.Schema, e.Opts.BEP)
}

// Plan synthesizes a boundedly evaluable plan for q, going through the BEP
// checker so that A-equivalent rewrites (chase, redundant-atom drops) are
// applied when the query is not covered as written. The returned Bound is
// the static worst-case access bound over every D |= A.
//
// Outcomes (both plans and not-bounded verdicts) are memoized in an LRU
// cache keyed by q's CanonicalKey, so repeat queries of the same shape —
// including α-renamed variants — skip the BEP check and plan synthesis
// entirely. The cache is invalidated by Load.
func (e *Engine) Plan(q *cq.CQ) (*plan.Plan, plan.Bound, error) {
	key := ""
	if e.cache != nil {
		key = q.CanonicalKey()
		if ent, ok := e.cache.get(key); ok {
			if ent.notBounded != nil {
				return nil, plan.Bound{}, ent.notBounded
			}
			return relabel(ent.p, q.Label), ent.bound, nil
		}
	}
	p, b, err := e.planUncached(q)
	if e.cache != nil {
		var nb *NotBoundedError
		switch {
		case err == nil:
			e.cache.put(&planEntry{key: key, p: p, bound: b})
		case asNotBounded(err, &nb):
			e.cache.put(&planEntry{key: key, notBounded: nb})
		}
		// Other errors (schema problems, build failures) are not cached.
	}
	return p, b, err
}

// relabel returns a shallow copy of p carrying the caller's label, leaving
// the cached plan (shared across goroutines) untouched.
func relabel(p *plan.Plan, label string) *plan.Plan {
	if p.Label == label {
		return p
	}
	cp := *p
	cp.Label = label
	return &cp
}

// planUncached is the uncached planning pipeline behind Plan.
func (e *Engine) planUncached(q *cq.CQ) (*plan.Plan, plan.Bound, error) {
	dec, err := e.CheckBounded(q)
	if err != nil {
		return nil, plan.Bound{}, err
	}
	switch dec.Verdict {
	case bep.Bounded, bep.BoundedEmpty:
		var p *plan.Plan
		if dec.Verdict == bep.BoundedEmpty {
			// The chase derived a contradiction: the empty plan answers Q
			// on every instance satisfying A.
			p = plan.Empty(q.Label, q.Free)
		} else {
			res, err := e.IsCovered(dec.Witness)
			if err != nil {
				return nil, plan.Bound{}, err
			}
			p, err = plan.Build(res, e.Opts.Plan)
			if err != nil {
				return nil, plan.Bound{}, err
			}
			p = plan.Optimize(p)
		}
		p.Label = q.Label
		sizeHint := 0
		if e.instance != nil {
			sizeHint = e.instance.Size()
		}
		b, err := plan.AccessBound(p, sizeHint)
		if err != nil {
			return nil, plan.Bound{}, err
		}
		return p, b, nil
	default:
		return nil, plan.Bound{}, &NotBoundedError{Decision: dec}
	}
}

// NotBoundedError reports that no bounded plan could be built; the
// embedded BEP decision carries the coverage diagnostics.
type NotBoundedError struct {
	Decision *bep.Decision
}

func (e *NotBoundedError) Error() string {
	msg := "core: query is not boundedly evaluable under the access schema"
	if e.Decision != nil && e.Decision.Cover != nil {
		msg += ":\n" + e.Decision.Cover.Explain()
	}
	return msg
}

// Execute answers q through its bounded plan. Load must have been called.
// Execution honors Opts.Exec: with Workers > 1, fetch fan-out and hash
// joins run on a bounded worker pool.
func (e *Engine) Execute(q *cq.CQ) (*plan.Table, *plan.ExecStats, error) {
	if e.indexed == nil {
		return nil, nil, fmt.Errorf("core: no instance loaded")
	}
	p, _, err := e.Plan(q)
	if err != nil {
		return nil, nil, err
	}
	return plan.ExecuteOpts(p, e.indexed, e.Opts.Exec)
}

// Mode says how ExecuteAuto answered a query.
type Mode int

const (
	// ViaBoundedPlan: a boundedly evaluable plan was used.
	ViaBoundedPlan Mode = iota
	// ViaFullScan: the query was not boundedly evaluable; the conventional
	// evaluator answered it by scanning.
	ViaFullScan
)

func (m Mode) String() string {
	if m == ViaBoundedPlan {
		return "bounded plan"
	}
	return "full scan"
}

// AutoResult is ExecuteAuto's outcome.
type AutoResult struct {
	Mode Mode
	// Rows is the answer set.
	Rows []data.Tuple
	// Fetched counts tuples retrieved via indices (bounded path).
	Fetched int64
	// Scanned counts tuples read by the fallback evaluator (scan path).
	Scanned int64
}

// ExecuteAuto implements the Conclusion's strategy: bounded plan when
// possible, conventional evaluation otherwise.
func (e *Engine) ExecuteAuto(q *cq.CQ) (*AutoResult, error) {
	if e.instance == nil {
		return nil, fmt.Errorf("core: no instance loaded")
	}
	tbl, stats, err := e.Execute(q)
	if err == nil {
		return &AutoResult{Mode: ViaBoundedPlan, Rows: tbl.Rows, Fetched: stats.Fetched}, nil
	}
	var nb *NotBoundedError
	if !asNotBounded(err, &nb) {
		return nil, err
	}
	res, err := eval.CQ(q, e.instance, eval.HashJoin)
	if err != nil {
		return nil, err
	}
	return &AutoResult{Mode: ViaFullScan, Rows: res.Rows, Scanned: res.Scanned}, nil
}

func asNotBounded(err error, target **NotBoundedError) bool {
	for err != nil {
		if nb, ok := err.(*NotBoundedError); ok {
			*target = nb
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Baseline answers q with the conventional evaluator (for comparisons).
func (e *Engine) Baseline(q *cq.CQ, mode eval.Mode) (*eval.Result, error) {
	if e.instance == nil {
		return nil, fmt.Errorf("core: no instance loaded")
	}
	return eval.CQ(q, e.instance, mode)
}

// UpperEnvelope searches for a covered relaxation of q (UEP).
func (e *Engine) UpperEnvelope(q *cq.CQ) (*envelope.Upper, error) {
	return envelope.FindUpper(q, e.Access, e.Schema, e.Opts.Envelope)
}

// LowerEnvelope searches for a covered, A-satisfiable k-expansion (LEP).
func (e *Engine) LowerEnvelope(q *cq.CQ, k int) (*envelope.Lower, error) {
	return envelope.FindLower(q, e.Access, e.Schema, k, e.Opts.Envelope)
}

// Specialize solves QSP for q with parameter set X and budget k.
func (e *Engine) Specialize(q *cq.CQ, X []string, k int) (*specialize.Result, error) {
	return specialize.Decide(q, e.Access, e.Schema, X, k, e.Opts.Specialize)
}

// Explain renders a one-stop report: coverage, BEP verdict, plan and bound
// (when bounded), and envelope/specialization hints otherwise.
func (e *Engine) Explain(q *cq.CQ, params []string) (string, error) {
	res, err := e.IsCovered(q)
	if err != nil {
		return "", err
	}
	out := "query: " + q.String() + "\n" + res.Explain()
	dec, err := e.CheckBounded(q)
	if err != nil {
		return "", err
	}
	out += "BEP verdict: " + dec.Verdict.String() + "\n"
	for _, r := range dec.Rewrites {
		out += "  rewrite: " + r + "\n"
	}
	if dec.Verdict == bep.Bounded || dec.Verdict == bep.BoundedEmpty {
		p, b, err := e.Plan(q)
		if err != nil {
			return "", err
		}
		out += p.String() + "\n" + b.String() + "\n"
		return out, nil
	}
	if up, err := e.UpperEnvelope(q); err == nil && up.Found {
		out += "upper envelope: " + up.Qu.String() + fmt.Sprintf("  (Nu ≤ %d)\n", up.Nu)
	}
	if lo, err := e.LowerEnvelope(q, 2); err == nil && lo.Found {
		out += "lower envelope: " + lo.Ql.String() + fmt.Sprintf("  (Nl ≤ %d)\n", lo.Nl)
	}
	if len(params) > 0 {
		if sp, err := e.Specialize(q, params, len(params)); err == nil && sp.Found {
			out += fmt.Sprintf("specializable with parameters %v\n", sp.Params)
		}
	}
	return out, nil
}
