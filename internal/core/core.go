// Package core is the public face of the bounded-evaluation system: one
// Engine that ties together the paper's pipeline —
//
//	check coverage (Theorem 3.11)    →  IsCovered
//	decide bounded evaluability      →  CheckBounded (BEP)
//	synthesize a bounded query plan  →  Plan
//	serve with access accounting     →  Query (ctx, budgets, fallbacks)
//	approximate when not bounded     →  UpperEnvelope / LowerEnvelope (UEP/LEP)
//	specialize parameterized queries →  Specialize (QSP)
//
// This is the strategy the paper's Conclusion prescribes: maintain an
// access schema A; for each query, compute exact answers by accessing a
// bounded amount of data when Q is covered/bounded, and otherwise fall
// back to envelopes or user-driven specialization. Engine.Query is the
// one serving entry point implementing it for CQs, UCQs and ∃FO⁺ alike.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/bep"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/durable"
	"repro/internal/envelope"
	"repro/internal/eval"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/specialize"
)

// ErrNotDurable reports a durability operation (Checkpoint) on an
// engine that was never given a data directory. Wire surfaces map it to
// a structured refusal instead of a 500.
var ErrNotDurable = errors.New("core: engine has no durable store")

// Options configures an Engine; the zero value is sensible.
type Options struct {
	Cover      cover.Options
	BEP        bep.Options
	Envelope   envelope.Options
	Specialize specialize.Options
	Plan       plan.BuildOptions
	// Exec configures plan execution; Exec.Workers > 1 fans bounded
	// fetches and hash joins out across a worker pool. Query's
	// WithWorkers overrides it per call.
	Exec plan.ExecOptions
	// PlanCache sizes the LRU plan cache: 0 means DefaultPlanCacheSize,
	// negative disables caching.
	PlanCache int
}

// Engine couples a relational schema, an access schema, and (after Load)
// an indexed instance.
//
// Concurrency: the Engine serves reads and writes concurrently with
// snapshot isolation. The loaded data lives in an immutable snapshot
// (instance + indices) behind an atomic pointer: Query, IsCovered,
// CheckBounded, Plan, Explain and the envelope/specialize entry points
// may all be called from many goroutines
// at once, and each request reads exactly one snapshot. Load and Apply
// are writers, serialized against each other internally; they build a new
// snapshot on the side and publish it with one pointer swap, so they
// never block or tear in-flight queries — calls that began before the
// swap keep their pre-update view, calls after it see the post-update
// one.
type Engine struct {
	Schema *schema.Schema
	Access *access.Schema
	Opts   Options

	// snap is the current immutable snapshot (nil before the first Load).
	snap atomic.Pointer[snapshot]
	// writeMu serializes the writers (Load, Apply) and protects store
	// attachment (Durable).
	writeMu sync.Mutex
	// store, when non-nil, persists every committed delta (WAL) and
	// serves checkpoints; attached once by Durable before serving.
	// guarded by writeMu for writes; reads under writeMu (Apply, Load)
	// or after attachment settles (Checkpoint).
	store *durable.Store
	cache *planCache
	// queries and applies count served requests, for Stats.
	queries atomic.Uint64
	applies atomic.Uint64
	// fetched and scanned accumulate per-request access accounting across
	// every served query (a streamed request contributes once its iterator
	// is drained) — the engine-wide counters behind /metrics.
	fetched atomic.Int64
	scanned atomic.Int64
}

// EngineStats is the aggregate health snapshot of a serving engine —
// the shape shared by the single-node Engine and the sharded
// internal/shard engine (which sums its shards).
type EngineStats struct {
	// Size is |D| of the current snapshot (0 before Load).
	Size int
	// Shards is 1 for a single-node engine, K for a sharded one.
	Shards int
	// Queries counts Query/QueryView requests since construction.
	Queries uint64
	// Applies counts successfully applied deltas since construction.
	Applies uint64
	// Fetched and Scanned accumulate tuple accesses across every served
	// query: Fetched counts index retrievals on the bounded path, Scanned
	// counts tuples read by fallback scans. A streamed request is counted
	// once its row iterator is drained.
	Fetched int64
	Scanned int64
	// Version is the committed snapshot version: 0 right after Load, +1
	// per applied delta. After a durable restart it resumes at the
	// recovered version, which is how clients confirm recovery.
	Version uint64
}

// Stats reports the engine's aggregate serving counters.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Shards:  1,
		Queries: e.queries.Load(),
		Applies: e.applies.Load(),
		Fetched: e.fetched.Load(),
		Scanned: e.scanned.Load(),
	}
	if sn := e.current(); sn != nil {
		st.Size = sn.instance.Size()
		st.Version = sn.version
	}
	return st
}

// snapshot is one immutable (instance, indices) version; every field is
// read-only once published.
type snapshot struct {
	instance *data.Instance
	indexed  *access.Indexed
	// version counts committed writes: 0 after Load, +1 per Apply. It is
	// the version the durable WAL stamps on each record.
	version uint64
}

// current returns the live snapshot, or nil before the first Load.
func (e *Engine) current() *snapshot { return e.snap.Load() }

// New builds an engine, validating the access schema against the
// relational schema.
func New(s *schema.Schema, a *access.Schema, opts Options) (*Engine, error) {
	if err := a.Validate(s); err != nil {
		return nil, err
	}
	size := opts.PlanCache
	if size == 0 {
		size = DefaultPlanCacheSize
	}
	return &Engine{Schema: s, Access: a, Opts: opts, cache: newPlanCache(size)}, nil
}

// Load attaches an instance: it builds every index in A and verifies
// D |= A, failing with the list of violations otherwise. The new snapshot
// is published atomically; queries already running keep the previous one.
// After the caller hands d to Load it must not mutate it — ownership
// transfers to the engine.
//
// Loading re-stamps rather than purges the plan cache: cached plans and
// not-bounded verdicts are data-independent given A, so only entries
// whose static bound embeds the instance-size hint (plans fetching
// through general-form constraints s(|D|)) are recomputed at the new
// size; everything else, and the cumulative hit/miss counters, survive.
func (e *Engine) Load(d *data.Instance) error {
	ix, viols, err := access.BuildIndexed(e.Access, d)
	if err != nil {
		return err
	}
	if len(viols) > 0 {
		return fmt.Errorf("core: instance violates the access schema: %v (first of %d)", viols[0], len(viols))
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.store != nil {
		// A Load replaces the dataset: restart the durable history at a
		// fresh base checkpoint for version 0 before publishing, so a
		// crash right after Load still recovers the loaded data.
		if err := e.store.Reset(); err != nil {
			return err
		}
		base := &durable.State{Instance: d, Indexed: ix, Version: 0}
		if err := e.store.WriteCheckpoint(e.Schema, base); err != nil {
			return err
		}
	}
	// The loaded instance is now read-only until a mutating Apply clones
	// it; drop the load-time dedup maps (rebuilt on demand by writers).
	d.ReleaseDedup()
	e.snap.Store(&snapshot{instance: d, indexed: ix, version: 0})
	e.cache.restamp(d.Size())
	return nil
}

// Durable attaches a durability directory: every subsequent Apply is
// WAL-logged before it publishes, Load writes a base checkpoint, and
// Checkpoint persists compact snapshots. If dir already holds durable
// state, it is recovered and published (restored == true) and the
// caller should skip its initial Load. Call once, before serving.
func (e *Engine) Durable(ctx context.Context, dir string, hook durable.Hook) (restored bool, err error) {
	st, err := durable.Open(dir, hook)
	if err != nil {
		return false, err
	}
	rec, err := st.Recover(ctx, e.Schema, e.Access, durable.NoLimit)
	if err != nil {
		st.Close()
		return false, err
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.store != nil {
		st.Close()
		return false, fmt.Errorf("core: engine already has a durable store")
	}
	e.store = st
	if rec == nil {
		return false, nil
	}
	e.snap.Store(&snapshot{instance: rec.Instance, indexed: rec.Indexed, version: rec.Version})
	e.cache.restamp(rec.Instance.Size())
	return true, nil
}

// Checkpoint persists the current snapshot as a compact binary
// checkpoint and compacts the WAL behind it, returning the version it
// captured. It reads one pinned immutable snapshot, so queries and
// applies proceed concurrently; only the final rename briefly holds the
// WAL lock. ErrNotDurable if the engine has no store.
func (e *Engine) Checkpoint(ctx context.Context) (uint64, error) {
	e.writeMu.Lock()
	st := e.store
	sn := e.current()
	e.writeMu.Unlock()
	if st == nil {
		return 0, ErrNotDurable
	}
	if sn == nil {
		return 0, errNoInstance()
	}
	sp := obs.FromContext(ctx).Start("checkpoint.write")
	err := st.WriteCheckpoint(e.Schema, &durable.State{
		Instance: sn.instance, Indexed: sn.indexed, Version: sn.version,
	})
	sp.SetRows(int64(sn.instance.Size()))
	sp.End()
	return sn.version, err
}

// CloseDurable detaches and closes the durable store, releasing its WAL
// handle. Safe to call when durability was never enabled.
func (e *Engine) CloseDurable() error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.store == nil {
		return nil
	}
	err := e.store.Close()
	e.store = nil
	return err
}

// Apply validates delta against the access schema and, when every
// cardinality bound still holds on the updated data, publishes a new
// snapshot with the delta applied — maintaining every index incrementally
// instead of rebuilding, and leaving queries in flight on their pre-delta
// view (see internal/live for the copy-on-write mechanics). A batch that
// would break a bound is rejected with a *live.ViolationError listing
// every violation, and has no visible effect.
//
// The plan cache survives an Apply the same way it survives Load: only
// size-dependent bounds are re-stamped. Apply is safe to call
// concurrently with queries and with other Apply/Load calls (writers are
// serialized internally); ctx cancels a long apply before it publishes.
func (e *Engine) Apply(ctx context.Context, delta *live.Delta) (*live.Result, error) {
	if delta == nil {
		return nil, fmt.Errorf("core: nil delta")
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	sn := e.current()
	if sn == nil {
		return nil, errNoInstance()
	}
	res, err := live.Apply(ctx, delta, sn.indexed)
	if err != nil {
		return nil, err
	}
	// Durability point: the delta must be on disk BEFORE the snapshot
	// swap makes it visible. If the append fails the snapshot is not
	// published — the engine keeps serving the pre-delta version and the
	// WAL was rolled back to the previous record boundary.
	if e.store != nil {
		wsp := obs.FromContext(ctx).Start("wal.append+fsync")
		err := e.store.AppendDelta(sn.version+1, delta)
		wsp.SetRows(int64(delta.Len()))
		wsp.End()
		if err != nil {
			return nil, err
		}
	}
	e.snap.Store(&snapshot{instance: res.Instance, indexed: res.Indexed, version: sn.version + 1})
	e.cache.restamp(res.Instance.Size())
	e.applies.Add(1)
	return res, nil
}

// SetSizeHint re-stamps the plan cache for an externally tracked |D|. It
// is the coordinator hook (internal/shard) for a planner engine that
// plans and serves on behalf of data it does not hold itself: cached
// general-form bounds s(|D|) are recomputed at the global size, exactly
// as Load and Apply do automatically for the engine's own instance.
func (e *Engine) SetSizeHint(size int) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.cache.restamp(size)
}

// CacheStats reports cumulative plan-cache hit/miss counters; they
// survive Load and Apply.
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// Instance returns the current snapshot's instance, or nil before Load.
// The returned instance is immutable.
func (e *Engine) Instance() *data.Instance {
	if sn := e.current(); sn != nil {
		return sn.instance
	}
	return nil
}

// Indexed returns the current snapshot's indexed schema, or nil before
// Load. The indices are immutable and safe for concurrent use; an Apply
// publishes a new Indexed rather than mutating this one.
func (e *Engine) Indexed() *access.Indexed {
	if sn := e.current(); sn != nil {
		return sn.indexed
	}
	return nil
}

// Snapshot returns the current (instance, indexed) pair from ONE
// snapshot read, or (nil, nil) before Load. Calling Instance() and
// Indexed() back to back reads the snapshot pointer twice, so a
// concurrent Apply landing between the two calls hands the caller the
// instance of one version and the indices of another; Snapshot cannot
// tear that way. Use it whenever both halves are needed together.
func (e *Engine) Snapshot() (*data.Instance, *access.Indexed) {
	if sn := e.current(); sn != nil {
		return sn.instance, sn.indexed
	}
	return nil, nil
}

// IsCovered runs the PTIME covered-query check with diagnostics.
func (e *Engine) IsCovered(q *cq.CQ) (*cover.Result, error) {
	return cover.Check(q, e.Access, e.Schema, e.Opts.Cover)
}

// IsCoveredUCQ runs the UCQ/∃FO⁺ covered check (covered or dominated subs).
func (e *Engine) IsCoveredUCQ(qs []*cq.CQ) (*cover.UCQResult, error) {
	return cover.CheckUCQ(qs, e.Access, e.Schema, e.Opts.Cover)
}

// CheckBounded runs the BEP checker (coverage + A-equivalent rewrites).
func (e *Engine) CheckBounded(q *cq.CQ) (*bep.Decision, error) {
	return bep.Decide(q, e.Access, e.Schema, e.Opts.BEP)
}

// Plan synthesizes a boundedly evaluable plan for q, going through the BEP
// checker so that A-equivalent rewrites (chase, redundant-atom drops) are
// applied when the query is not covered as written. The returned Bound is
// the static worst-case access bound over every D |= A.
//
// Outcomes (both plans and not-bounded verdicts, along with the BEP
// decision backing them) are memoized in an LRU cache keyed by q's
// CanonicalKey, so repeat queries of the same shape — including α-renamed
// variants — skip the BEP check and plan synthesis entirely. Entries
// survive Load and Apply; only size-dependent bounds are re-stamped.
func (e *Engine) Plan(q *cq.CQ) (*plan.Plan, plan.Bound, error) {
	return e.PlanAt(q, e.sizeHint())
}

// PlanAt is Plan with an explicit |D| for general-form cardinality
// bounds, for coordinators (internal/shard) whose planner engine holds
// no data of its own: the global dataset size is tracked externally and
// passed per request.
func (e *Engine) PlanAt(q *cq.CQ, sizeHint int) (*plan.Plan, plan.Bound, error) {
	p, b, _, _, err := e.planWithDecision(q, sizeHint)
	return p, b, err
}

// sizeHint is |D| of the current snapshot (0 before Load), the input to
// general-form cardinality bounds s(|D|).
func (e *Engine) sizeHint() int {
	if sn := e.current(); sn != nil {
		return sn.instance.Size()
	}
	return 0
}

// planWithDecision is Plan plus the cached BEP decision and a cache-hit
// flag, for callers (Query, Explain) that need the diagnostics without
// re-running the checker. sizeHint is the |D| the caller's snapshot
// reports, so a request's bound is computed against the same version it
// executes (the cache normalizes stored bounds to the latest size).
func (e *Engine) planWithDecision(q *cq.CQ, sizeHint int) (*plan.Plan, plan.Bound, *bep.Decision, bool, error) {
	key := ""
	if e.cache != nil {
		key = q.CanonicalKey()
		if ent, ok := e.cache.get(key); ok {
			if ent.notBounded != nil {
				return nil, plan.Bound{}, ent.notBounded.Decision, true, ent.notBounded
			}
			return relabel(ent.p, q.Label), ent.bound, ent.dec, true, nil
		}
	}
	p, b, dec, err := e.planUncached(q, sizeHint)
	if e.cache != nil {
		var nb *NotBoundedError
		switch {
		case err == nil:
			e.cache.put(&planEntry{key: key, p: p, bound: b, dec: dec})
		case asNotBounded(err, &nb):
			e.cache.put(&planEntry{key: key, notBounded: nb})
		}
		// Other errors (schema problems, build failures) are not cached.
	}
	return p, b, dec, false, err
}

// relabel returns a shallow copy of p carrying the caller's label, leaving
// the cached plan (shared across goroutines) untouched.
func relabel(p *plan.Plan, label string) *plan.Plan {
	if p.Label == label {
		return p
	}
	cp := *p
	cp.Label = label
	return &cp
}

// planUncached is the uncached planning pipeline behind Plan.
func (e *Engine) planUncached(q *cq.CQ, sizeHint int) (*plan.Plan, plan.Bound, *bep.Decision, error) {
	dec, err := e.CheckBounded(q)
	if err != nil {
		return nil, plan.Bound{}, nil, err
	}
	switch dec.Verdict {
	case bep.Bounded, bep.BoundedEmpty:
		var p *plan.Plan
		if dec.Verdict == bep.BoundedEmpty {
			// The chase derived a contradiction: the empty plan answers Q
			// on every instance satisfying A.
			p = plan.Empty(q.Label, q.Free)
		} else {
			res, err := e.IsCovered(dec.Witness)
			if err != nil {
				return nil, plan.Bound{}, dec, err
			}
			p, err = plan.Build(res, e.Opts.Plan)
			if err != nil {
				return nil, plan.Bound{}, dec, err
			}
			p = plan.Optimize(p)
		}
		p.Label = q.Label
		b, err := plan.AccessBound(p, sizeHint)
		if err != nil {
			return nil, plan.Bound{}, dec, err
		}
		return p, b, dec, nil
	default:
		return nil, plan.Bound{}, dec, &NotBoundedError{Decision: dec}
	}
}

// NotBoundedError reports that no bounded plan could be built; the
// embedded BEP decision (or, for a union, the covered-UCQ check) carries
// the coverage diagnostics.
type NotBoundedError struct {
	Decision *bep.Decision
	// UCQCover is set instead of Decision when the query was a union: no
	// covered form of the union exists under the access schema.
	UCQCover *cover.UCQResult
	// Label names the refused union (UCQCover case); the CQ case carries
	// its query inside Decision.Cover.
	Label string
}

func (e *NotBoundedError) Error() string {
	if e.UCQCover != nil {
		msg := fmt.Sprintf("core: UCQ %s is not covered by the access schema", e.Label)
		for i, st := range e.UCQCover.Subs {
			if st != cover.SubCovered && st != cover.SubDominated {
				msg += fmt.Sprintf("\n  sub-query %d: not covered and not dominated", i)
			}
		}
		return msg
	}
	msg := "core: query is not boundedly evaluable under the access schema"
	if e.Decision != nil && e.Decision.Cover != nil {
		msg += ":\n" + e.Decision.Cover.Explain()
	}
	return msg
}

// Mode says which of the paper's serving strategies answered a query.
type Mode int

const (
	// ViaBoundedPlan: a boundedly evaluable plan was used.
	ViaBoundedPlan Mode = iota
	// ViaFullScan: the query was not boundedly evaluable; the conventional
	// evaluator answered it by scanning.
	ViaFullScan
	// ViaUpperEnvelope: the query was not boundedly evaluable; a covered
	// upper envelope Qu ⊇ Q answered it through Qu's bounded plan
	// (Query with WithFallback(FallbackEnvelope)).
	ViaUpperEnvelope
)

func (m Mode) String() string {
	switch m {
	case ViaBoundedPlan:
		return "bounded plan"
	case ViaFullScan:
		return "full scan"
	case ViaUpperEnvelope:
		return "upper envelope"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

func asNotBounded(err error, target **NotBoundedError) bool {
	for err != nil {
		if nb, ok := err.(*NotBoundedError); ok {
			*target = nb
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Baseline answers q with the conventional evaluator (for comparisons).
func (e *Engine) Baseline(q *cq.CQ, mode eval.Mode) (*eval.Result, error) {
	sn := e.current()
	if sn == nil {
		return nil, errNoInstance()
	}
	return eval.CQ(q, sn.instance, mode)
}

// UpperEnvelope searches for a covered relaxation of q (UEP).
func (e *Engine) UpperEnvelope(q *cq.CQ) (*envelope.Upper, error) {
	return envelope.FindUpper(q, e.Access, e.Schema, e.Opts.Envelope)
}

// LowerEnvelope searches for a covered, A-satisfiable k-expansion (LEP).
func (e *Engine) LowerEnvelope(q *cq.CQ, k int) (*envelope.Lower, error) {
	return envelope.FindLower(q, e.Access, e.Schema, k, e.Opts.Envelope)
}

// Specialize solves QSP for q with parameter set X and budget k.
func (e *Engine) Specialize(q *cq.CQ, X []string, k int) (*specialize.Result, error) {
	return specialize.Decide(q, e.Access, e.Schema, X, k, e.Opts.Specialize)
}

// Explain renders a one-stop report: coverage, BEP verdict, plan and bound
// (when bounded), and envelope/specialization hints otherwise. It runs on
// the plan cache: for a query whose shape has been planned (or refused)
// before, the coverage check, BEP decision and plan all come from the
// cached entry, so Explain on a hot query costs a cache lookup.
func (e *Engine) Explain(q *cq.CQ, params []string) (string, error) {
	return e.ExplainAt(q, params, e.sizeHint())
}

// ExplainAt is Explain with an explicit |D| for general-form bounds,
// mirroring PlanAt for coordinator engines.
func (e *Engine) ExplainAt(q *cq.CQ, params []string, sizeHint int) (string, error) {
	p, b, dec, _, err := e.planWithDecision(q, sizeHint)
	var nb *NotBoundedError
	if err != nil && !asNotBounded(err, &nb) {
		return "", err
	}
	out := "query: " + q.String() + "\n"
	if dec == nil {
		// Cache or checker gave no decision (should not happen): fall
		// back to running the checker directly.
		if dec, err = e.CheckBounded(q); err != nil {
			return "", err
		}
	}
	if dec.Cover != nil {
		out += dec.Cover.Explain()
	}
	out += "BEP verdict: " + dec.Verdict.String() + "\n"
	for _, r := range dec.Rewrites {
		out += "  rewrite: " + r + "\n"
	}
	if nb == nil {
		out += p.String() + "\n" + b.String() + "\n"
		return out, nil
	}
	if up, err := e.UpperEnvelope(q); err == nil && up.Found {
		out += "upper envelope: " + up.Qu.String() + fmt.Sprintf("  (Nu ≤ %d)\n", up.Nu)
	}
	if lo, err := e.LowerEnvelope(q, 2); err == nil && lo.Found {
		out += "lower envelope: " + lo.Ql.String() + fmt.Sprintf("  (Nl ≤ %d)\n", lo.Nl)
	}
	if len(params) > 0 {
		if sp, err := e.Specialize(q, params, len(params)); err == nil && sp.Found {
			out += fmt.Sprintf("specializable with parameters %v\n", sp.Params)
		}
	}
	return out, nil
}
