package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/workload"
)

func accidentsEngine(t testing.TB, opts Options, days int) *Engine {
	t.Helper()
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: days, AccidentsPerDay: 10, MaxVehicles: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(acc.Schema, acc.Access, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(acc.Instance); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestPlanCacheHitsAndMisses(t *testing.T) {
	eng := accidentsEngine(t, Options{}, 2)
	q := workload.Q0()
	if _, _, err := eng.Plan(q); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Misses != 1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("after first plan: %+v", st)
	}
	if _, _, err := eng.Plan(q); err != nil {
		t.Fatal(err)
	}
	// An α-renamed variant of the same shape must hit too.
	renamed := q.Substitute(map[string]cq.Term{"aid": cq.Var("a2"), "vid": cq.Var("v2")})
	renamed.Label = "Q0b"
	p, _, err := eng.Plan(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if p.Label != "Q0b" {
		t.Errorf("cached plan must carry the caller's label, got %q", p.Label)
	}
	st = eng.CacheStats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Fatalf("after repeat plans: %+v", st)
	}
	// Query goes through the same cache.
	if _, err := eng.Query(context.Background(), q, WithFallback(FallbackRefuse)); err != nil {
		t.Fatal(err)
	}
	if st = eng.CacheStats(); st.Hits != 3 {
		t.Fatalf("Query must hit the plan cache: %+v", st)
	}
}

func TestPlanCacheCachesNotBounded(t *testing.T) {
	soc, err := workload.GenerateSocial(workload.SocialConfig{
		People: 100, MaxFriends: 5, MaxLikes: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(soc.Schema, soc.Access, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(soc.Instance); err != nil {
		t.Fatal(err)
	}
	// allPairs is unanchored, hence not boundedly evaluable.
	var unbounded *cq.CQ
	for _, q := range workload.PatternQueries(1) {
		if q.Label == "allPairs" {
			unbounded = q
		}
	}
	for i := 0; i < 2; i++ {
		res, err := eng.Query(context.Background(), unbounded)
		if err != nil {
			t.Fatal(err)
		}
		if res.Mode != ViaFullScan {
			t.Fatalf("iteration %d: allPairs must fall back to scan", i)
		}
	}
	st := eng.CacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("not-bounded verdicts must be cached too: %+v", st)
	}
}

func TestPlanCacheRestampedOnLoad(t *testing.T) {
	// A log-cardinality constraint makes the static bound depend on |D|.
	// Reloading must not serve that stale bound — but it must not throw
	// the entry (or the cumulative counters) away either: the plan is
	// data-independent, so the entry survives with its bound re-stamped
	// at the new size.
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.Constraint{
		Rel: "R", X: []schema.Attribute{"A"}, Y: []schema.Attribute{"B"}, Card: access.LogCard(),
	})
	mkInstance := func(n int) *data.Instance {
		d := data.NewInstance(s)
		for i := 0; i < n; i++ {
			d.MustInsert("R", value.NewInt(int64(i)), value.NewInt(int64(i%7)))
		}
		return d
	}
	eng, err := New(s, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(mkInstance(1 << 4)); err != nil {
		t.Fatal(err)
	}
	q := &cq.CQ{Label: "Q", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))},
		Eqs:   []cq.Eq{{L: cq.Var("x"), R: cq.Const(value.NewInt(1))}}}
	_, small, err := eng.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(mkInstance(1 << 12)); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Entries != 1 || st.Misses != 1 {
		t.Fatalf("Load must keep entries and cumulative stats: %+v", st)
	}
	_, big, err := eng.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Hits != 1 {
		t.Fatalf("re-stamped entry must serve the reload as a hit: %+v", st)
	}
	if big.Fetched <= small.Fetched {
		t.Errorf("bound must grow with |D| after reload: %d then %d", small.Fetched, big.Fetched)
	}
	if big.SizeHint != 1<<12 {
		t.Errorf("re-stamped bound reports SizeHint %d, want %d", big.SizeHint, 1<<12)
	}
}

func TestPlanCacheConstBoundsSurviveLoadVerbatim(t *testing.T) {
	// Constant-cardinality bounds do not embed |D|: reloading a very
	// different instance must keep both the entry and its bound values.
	eng := accidentsEngine(t, Options{}, 2)
	q := workload.Q0()
	_, before, err := eng.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	bigger, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 6, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(bigger.Instance); err != nil {
		t.Fatal(err)
	}
	_, after, err := eng.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("const-bound entry must survive Load as a hit: %+v", st)
	}
	if after.Fetched != before.Fetched || after.Output != before.Output {
		t.Errorf("const bound changed across Load: %+v then %+v", before, after)
	}
	if after.SizeHint != bigger.Instance.Size() {
		t.Errorf("surviving entry must report the new size hint: %d, want %d",
			after.SizeHint, bigger.Instance.Size())
	}
}

func TestPlanCacheDisabledAndLRU(t *testing.T) {
	off := accidentsEngine(t, Options{PlanCache: -1}, 2)
	q := workload.Q0()
	for i := 0; i < 3; i++ {
		if _, _, err := off.Plan(q); err != nil {
			t.Fatal(err)
		}
	}
	if st := off.CacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache must stay empty: %+v", st)
	}

	lru := accidentsEngine(t, Options{PlanCache: 2}, 2)
	shapes := []*cq.CQ{workload.Q0()}
	for i := 0; i < 3; i++ {
		q := &cq.CQ{Label: fmt.Sprintf("S%d", i), Free: []string{"d"},
			Atoms: []cq.Atom{cq.NewAtom("Accident", cq.Var("a"), cq.Var("d"), cq.Var("t"))},
			Eqs: []cq.Eq{{L: cq.Var("t"), R: cq.Const(value.NewString(workload.DateName(i)))},
				{L: cq.Var("a"), R: cq.Const(value.NewInt(int64(i + 1)))}}}
		shapes = append(shapes, q)
	}
	for _, q := range shapes {
		if _, _, err := lru.Plan(q); err != nil {
			t.Fatal(err)
		}
	}
	if st := lru.CacheStats(); st.Entries != 2 {
		t.Fatalf("LRU must cap entries at capacity 2: %+v", st)
	}
	// The most recent shape is still cached.
	if _, _, err := lru.Plan(shapes[len(shapes)-1]); err != nil {
		t.Fatal(err)
	}
	if st := lru.CacheStats(); st.Hits != 1 {
		t.Fatalf("most recent shape must still hit: %+v", st)
	}
}

// TestConcurrentQuery hammers one Engine from many goroutines with a
// mix of bounded and unbounded queries; run with -race this verifies the
// documented guarantee that an Engine is safe for concurrent readers after
// Load, including the shared plan cache.
func TestConcurrentQuery(t *testing.T) {
	soc, err := workload.GenerateSocial(workload.SocialConfig{
		People: 300, MaxFriends: 10, MaxLikes: 5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(soc.Schema, soc.Access, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(soc.Instance); err != nil {
		t.Fatal(err)
	}
	queries := workload.PatternQueries(1)
	queries = append(queries, workload.GraphSearchQuery(1, "NYC", "cycling"))

	// Reference answers, computed single-threaded.
	want := make([]int, len(queries))
	for i, q := range queries {
		res, err := eng.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = len(res.Rows)
	}

	const goroutines = 16
	const iters = 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(queries)
				res, err := eng.Query(context.Background(), queries[qi])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
				if len(res.Rows) != want[qi] {
					errs <- fmt.Errorf("goroutine %d: query %s: %d rows, want %d",
						g, queries[qi].Label, len(res.Rows), want[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := eng.CacheStats(); st.Hits == 0 {
		t.Errorf("concurrent load must hit the plan cache: %+v", st)
	}
}
