package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/workload"
)

func newAccidentEngine(t *testing.T) *Engine {
	t.Helper()
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 10, AccidentsPerDay: 20, MaxVehicles: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(acc.Schema, acc.Access, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Load(acc.Instance); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEndToEndQ0(t *testing.T) {
	e := newAccidentEngine(t)
	q := workload.Q0()

	res, err := e.IsCovered(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("Q0 must be covered:\n%s", res.Explain())
	}
	p, bound, err := e.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.FetchCount() == 0 || bound.Fetched <= 0 {
		t.Errorf("plan should fetch: %s / %s", p, bound)
	}
	got, err := e.Query(context.Background(), q, WithFallback(FallbackRefuse))
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Baseline(q, eval.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("bounded=%d baseline=%d rows", len(got.Rows), len(want.Rows))
	}
	if got.Stats.Fetched > bound.Fetched {
		t.Errorf("execution fetched %d > static bound %d", got.Stats.Fetched, bound.Fetched)
	}
}

func TestQueryBoundedPath(t *testing.T) {
	e := newAccidentEngine(t)
	res, err := e.Query(context.Background(), workload.Q0())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ViaBoundedPlan {
		t.Fatalf("Q0 must go through the bounded plan, got %v", res.Mode)
	}
	if res.Stats.Fetched == 0 {
		t.Error("bounded path must report fetches")
	}
}

func TestQueryScanFallback(t *testing.T) {
	e := newAccidentEngine(t)
	q, _ := workload.Q51() // unparameterized: not bounded
	res, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ViaFullScan {
		t.Fatalf("Q51 must fall back to scanning, got %v", res.Mode)
	}
	if res.Stats.Scanned == 0 {
		t.Error("scan path must report scanned tuples")
	}
	// Agreement with direct baseline.
	want, err := e.Baseline(q, eval.ScanJoin)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Errorf("fallback rows = %d, baseline = %d", len(res.Rows), len(want.Rows))
	}
}

func TestLoadRejectsViolatingInstance(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []schema.Attribute{"A"}, []schema.Attribute{"B"}, 1))
	e, err := New(s, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := data.NewInstance(s)
	d.MustInsert("R", value.NewInt(1), value.NewInt(10))
	d.MustInsert("R", value.NewInt(1), value.NewInt(20))
	if err := e.Load(d); err == nil {
		t.Fatal("violating instance must be rejected")
	}
}

func TestNewRejectsBadAccessSchema(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A"))
	bad := access.NewSchema(access.NewConstraint("T", nil, []schema.Attribute{"A"}, 1))
	if _, err := New(s, bad, Options{}); err == nil {
		t.Fatal("constraints on unknown relations must be rejected")
	}
}

func TestExplainBoundedQuery(t *testing.T) {
	e := newAccidentEngine(t)
	out, err := e.Explain(workload.Q0(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"covered: true", "BEP verdict: bounded", "plan Q0", "access bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainUnboundedQueryShowsAlternatives(t *testing.T) {
	e := newAccidentEngine(t)
	q, params := workload.Q51()
	out, err := e.Explain(q, params)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "unknown") {
		t.Errorf("Q51 should be reported not bounded:\n%s", out)
	}
	if !strings.Contains(out, "specializable with parameters [date]") {
		t.Errorf("Explain should surface the QSP result:\n%s", out)
	}
}

func TestEngineWithoutInstance(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{Days: 1, AccidentsPerDay: 2, MaxVehicles: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(acc.Schema, acc.Access, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Static analyses work without data.
	if _, err := e.IsCovered(workload.Q0()); err != nil {
		t.Errorf("IsCovered should not need an instance: %v", err)
	}
	if _, _, err := e.Plan(workload.Q0()); err != nil {
		t.Errorf("Plan should not need an instance: %v", err)
	}
	// Execution does.
	if _, err := e.Query(context.Background(), workload.Q0(), WithFallback(FallbackRefuse)); err == nil {
		t.Error("Query without Load must fail")
	}
	if _, err := e.Query(context.Background(), workload.Q0()); err == nil {
		t.Error("Query with scan fallback without Load must fail")
	}
}

func TestPlanGoesThroughRewrites(t *testing.T) {
	// The A-unsatisfiable Q2 of Example 3.1(2) gets an empty plan via BEP.
	s := schema.MustNew(schema.MustRelation("R2", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R2", []schema.Attribute{"A"}, []schema.Attribute{"B"}, 1))
	e, err := New(s, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := &cq.CQ{
		Label: "Q2", Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R2", cq.Var("x"), cq.Var("x1")),
			cq.NewAtom("R2", cq.Var("x"), cq.Var("x2")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("x1"), R: cq.Const(value.NewInt(1))},
			{L: cq.Var("x2"), R: cq.Const(value.NewInt(2))},
		},
	}
	p, b, err := e.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if b.Fetched != 0 || b.Output != 0 {
		t.Errorf("empty plan bound = %v", b)
	}
	d := data.NewInstance(s)
	d.MustInsert("R2", value.NewInt(1), value.NewInt(1))
	if err := e.Load(d); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(context.Background(), q, WithFallback(FallbackRefuse))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("A-unsatisfiable query must answer empty: %v", res.Rows)
	}
	_ = p
}

func TestSpecializeViaEngine(t *testing.T) {
	e := newAccidentEngine(t)
	q, params := workload.Q51()
	res, err := e.Specialize(q, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Params[0] != "date" {
		t.Fatalf("engine QSP = %+v", res)
	}
}

func TestGraphSearchEndToEnd(t *testing.T) {
	soc, err := workload.GenerateSocial(workload.SocialConfig{People: 500, MaxFriends: 20, MaxLikes: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(soc.Schema, soc.Access, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Load(soc.Instance); err != nil {
		t.Fatal(err)
	}
	q := workload.GraphSearchQuery(7, "NYC", "cycling")
	got, err := e.Query(context.Background(), q, WithFallback(FallbackRefuse))
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Baseline(q, eval.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("bounded=%d baseline=%d", len(got.Rows), len(want.Rows))
	}
	if got.Stats.Fetched >= want.Scanned {
		t.Errorf("personalized search should touch far less data: fetched=%d scanned=%d",
			got.Stats.Fetched, want.Scanned)
	}
}
