package core

import (
	"context"
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/posfo"
	"repro/internal/schema"
	"repro/internal/ucq"
	"repro/internal/value"
	"repro/internal/workload"
)

func iv(i int64) value.Value { return value.NewInt(i) }

func example35Engine(t *testing.T) (*Engine, *ucq.UCQ) {
	t.Helper()
	s := schema.MustNew(schema.MustRelation("Rp", "A", "B", "C"))
	ap := access.NewSchema(access.NewConstraint("Rp",
		[]schema.Attribute{"A"}, []schema.Attribute{"B"}, 4))
	q1 := &cq.CQ{Label: "Q1", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
		Eqs:   []cq.Eq{{L: cq.Var("x"), R: cq.Const(iv(1))}}}
	q2 := &cq.CQ{Label: "Q2", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
		Eqs: []cq.Eq{
			{L: cq.Var("x"), R: cq.Const(iv(1))},
			{L: cq.Var("z"), R: cq.Var("y")},
		}}
	u, err := ucq.New("U35", q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(s, ap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := data.NewInstance(s)
	d.MustInsert("Rp", iv(1), iv(10), iv(10))
	d.MustInsert("Rp", iv(1), iv(20), iv(99))
	d.MustInsert("Rp", iv(2), iv(30), iv(30))
	if err := eng.Load(d); err != nil {
		t.Fatal(err)
	}
	return eng, u
}

func TestEngineUCQPipeline(t *testing.T) {
	eng, u := example35Engine(t)
	dec, err := eng.CheckBoundedUCQ(u)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict.String() != "bounded" {
		t.Fatalf("UCQ verdict = %v", dec.Verdict)
	}
	p, bound, err := eng.PlanUCQ(u)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ConformsTo(plan.LangUCQ); err != nil {
		t.Fatal(err)
	}
	if bound.Fetched <= 0 {
		t.Errorf("bound = %v", bound)
	}
	got, err := eng.Query(context.Background(), u, WithFallback(FallbackRefuse))
	if err != nil {
		t.Fatal(err)
	}
	want, err := u.Eval(eng.Instance(), eval.ScanJoin)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("bounded=%d naive=%d", len(got.Rows), len(want.Rows))
	}
	if got.Stats.Fetched > bound.Fetched {
		t.Errorf("fetched %d > bound %d", got.Stats.Fetched, bound.Fetched)
	}
}

func TestQueryUCQBothPaths(t *testing.T) {
	eng, u := example35Engine(t)
	res, err := eng.Query(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ViaBoundedPlan {
		t.Errorf("covered UCQ should use the bounded plan: %v", res.Mode)
	}
	// An uncovered union (no anchor) falls back.
	open := &cq.CQ{Label: "open", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))}}
	u2, err := ucq.New("U2", open)
	if err != nil {
		t.Fatal(err)
	}
	res, err = eng.Query(context.Background(), u2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ViaFullScan {
		t.Errorf("uncovered UCQ should fall back: %v", res.Mode)
	}
}

func TestQueryPosFO(t *testing.T) {
	eng, _ := example35Engine(t)
	// Q(y) :- Rp(1, y, z) ∨ Rp(y, w, 30): a genuine ∃FO⁺ disjunction.
	q := &posfo.Query{
		Label: "P", Free: []string{"y"},
		Body: posfo.Or{Fs: []posfo.Formula{
			posfo.Atom{Rel: "Rp", Args: []cq.Term{cq.Const(iv(1)), cq.Var("y"), cq.Var("z")}},
			posfo.Atom{Rel: "Rp", Args: []cq.Term{cq.Var("y"), cq.Var("w"), cq.Const(iv(30))}},
		}},
	}
	res, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// {10, 20} from the first disjunct, {2} from the second.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestClassifyWorkload(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 2, AccidentsPerDay: 3, MaxVehicles: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(acc.Schema, acc.Access, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q51, _ := workload.Q51()
	qs := []*cq.CQ{workload.Q0(), q51}
	rep, err := eng.ClassifyWorkload(qs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 2 || rep.Covered != 1 || rep.Unknown != 1 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Bounded() != 1 || rep.Rate() != 0.5 {
		t.Errorf("bounded=%d rate=%f", rep.Bounded(), rep.Rate())
	}
	empty, err := eng.ClassifyWorkload(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Rate() != 0 {
		t.Error("empty workload rate should be 0")
	}
}
