package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/posfo"
	"repro/internal/schema"
	"repro/internal/ucq"
	"repro/internal/value"
	"repro/internal/workload"
)

// socialEngine builds a social-graph engine big enough that the path3
// walk runs long enough to be canceled mid-flight.
func socialEngine(t testing.TB, people int, opts Options) *Engine {
	t.Helper()
	soc, err := workload.GenerateSocial(workload.SocialConfig{
		People: people, MaxFriends: 50, MaxLikes: 10, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(soc.Schema, soc.Access, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(soc.Instance); err != nil {
		t.Fatal(err)
	}
	return eng
}

// path3 is the 3-hop friend walk anchored at a person constant — the
// fan-out-heavy serving stress query (mirrors internal/bench.Path3Query,
// which core cannot import).
func path3(me int64) *cq.CQ {
	return &cq.CQ{
		Label: "path3", Free: []string{"h"},
		Atoms: []cq.Atom{
			cq.NewAtom("Friend", cq.Var("me"), cq.Var("f")),
			cq.NewAtom("Friend", cq.Var("f"), cq.Var("g")),
			cq.NewAtom("Friend", cq.Var("g"), cq.Var("h")),
		},
		Eqs: []cq.Eq{{L: cq.Var("me"), R: cq.Const(iv(me))}},
	}
}

// sameTuples reports whether two row slices are byte-identical in order.
func sameTuples(a, b []data.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestQueryEquivalentToLegacyPaths is the equivalence property test of
// the unified API: on the accidents, social, and random-CQ workloads,
// Query must return byte-identical rows (same order), identical stats and
// the same mode as the primitive execution paths the legacy entry points
// were built from — plan.Execute on the synthesized plan for bounded
// queries, eval.CQ for scans.
func TestQueryEquivalentToLegacyPaths(t *testing.T) {
	type fixture struct {
		name string
		eng  *Engine // serving engine (plan cache on)
		ref  *Engine // reference engine (plan cache off)
		qs   []*cq.CQ
	}
	var fixtures []fixture

	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 6, AccidentsPerDay: 15, MaxVehicles: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	consts := map[schema.Attribute][]cq.Term{
		"date": {cq.Const(value.NewString("1/5/2005"))},
		"aid":  {cq.Const(iv(3))},
		"vid":  {cq.Const(iv(5))},
	}
	randomQs, err := workload.RandomCQs(acc.Schema, workload.RandomCQConfig{
		Queries: 30, MaxAtoms: 4, StartProb: 0.7, FreeVars: 2, Seed: 9,
	}, consts)
	if err != nil {
		t.Fatal(err)
	}
	q51, _ := workload.Q51()
	accQs := append([]*cq.CQ{workload.Q0(), q51}, randomQs...)
	newPair := func(s *schema.Schema, a *access.Schema, d *data.Instance) (*Engine, *Engine) {
		t.Helper()
		eng, err := New(s, a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := New(s, a, Options{PlanCache: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Load(d); err != nil {
			t.Fatal(err)
		}
		if err := ref.Load(d); err != nil {
			t.Fatal(err)
		}
		return eng, ref
	}
	engA, refA := newPair(acc.Schema, acc.Access, acc.Instance)
	fixtures = append(fixtures, fixture{name: "accidents", eng: engA, ref: refA, qs: accQs})

	soc, err := workload.GenerateSocial(workload.SocialConfig{
		People: 400, MaxFriends: 15, MaxLikes: 5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	engS, refS := newPair(soc.Schema, soc.Access, soc.Instance)
	socQs := append([]*cq.CQ{workload.GraphSearchQuery(1, "NYC", "cycling"), path3(1)},
		workload.PatternQueries(1)...)
	fixtures = append(fixtures, fixture{name: "social", eng: engS, ref: refS, qs: socQs})

	bounded, scanned := 0, 0
	for _, fx := range fixtures {
		for _, q := range fx.qs {
			// Reference answer from the primitive paths, over one pinned
			// snapshot pair (mixing Instance() and Indexed() could tear
			// across a concurrent Apply — bevet's snapshottear flags it).
			var wantRows []data.Tuple
			var wantMode Mode
			var wantFetched, wantScanned int64
			refInst, refIx := fx.ref.Snapshot()
			p, _, perr := fx.ref.Plan(q)
			switch {
			case perr == nil:
				tbl, st, err := plan.Execute(p, refIx)
				if err != nil {
					t.Fatalf("%s/%s: reference execute: %v", fx.name, q.Label, err)
				}
				wantRows, wantMode, wantFetched = tbl.Rows, ViaBoundedPlan, st.Fetched
				bounded++
			default:
				var nb *NotBoundedError
				if !asNotBounded(perr, &nb) {
					continue // planning rejected the random query on both paths
				}
				r, err := eval.CQ(q, refInst, eval.HashJoin)
				if err != nil {
					t.Fatalf("%s/%s: reference eval: %v", fx.name, q.Label, err)
				}
				wantRows, wantMode, wantScanned = r.Rows, ViaFullScan, r.Scanned
				scanned++
			}

			// Twice, so the second round serves from the plan cache.
			for round := 0; round < 2; round++ {
				res, err := fx.eng.Query(context.Background(), q)
				if err != nil {
					t.Fatalf("%s/%s round %d: Query: %v", fx.name, q.Label, round, err)
				}
				if res.Mode != wantMode {
					t.Fatalf("%s/%s round %d: mode %v, want %v", fx.name, q.Label, round, res.Mode, wantMode)
				}
				if !sameTuples(res.Rows, wantRows) {
					t.Fatalf("%s/%s round %d: rows diverge from the legacy path", fx.name, q.Label, round)
				}
				if res.Stats.Fetched != wantFetched || res.Stats.Scanned != wantScanned {
					t.Fatalf("%s/%s round %d: stats {f=%d s=%d}, want {f=%d s=%d}",
						fx.name, q.Label, round, res.Stats.Fetched, res.Stats.Scanned, wantFetched, wantScanned)
				}
				if len(res.Columns) == 0 {
					t.Fatalf("%s/%s: result must carry columns in mode %v", fx.name, q.Label, res.Mode)
				}

				// FallbackRefuse must serve exactly the bounded answers and
				// refuse everything else (the contract Execute used to wrap).
				refuse, err := fx.eng.Query(context.Background(), q, WithFallback(FallbackRefuse))
				if wantMode == ViaBoundedPlan {
					if err != nil {
						t.Fatalf("%s/%s: Query(FallbackRefuse): %v", fx.name, q.Label, err)
					}
					if !sameTuples(refuse.Rows, res.Rows) || refuse.Stats.Fetched != res.Stats.Fetched {
						t.Fatalf("%s/%s: FallbackRefuse diverges from the default fallback", fx.name, q.Label)
					}
				} else if err == nil {
					t.Fatalf("%s/%s: Query(FallbackRefuse) must refuse a non-bounded query", fx.name, q.Label)
				}
			}
		}
	}
	if bounded < 3 || scanned < 3 {
		t.Fatalf("workload too weak to be a property test: %d bounded, %d scanned", bounded, scanned)
	}
}

// cancelAfterCtx is a context whose Err starts reporting Canceled after n
// checks: it proves deterministically that execution observes ctx
// mid-flight (the first checks pass, so work had started) without racing
// a timer against the scheduler.
type cancelAfterCtx struct {
	context.Context
	left atomic.Int64
}

func cancelAfter(n int64) *cancelAfterCtx {
	c := &cancelAfterCtx{Context: context.Background()}
	c.left.Store(n)
	return c
}

func (c *cancelAfterCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func (c *cancelAfterCtx) checked() bool { return c.left.Load() < 0 }

// TestQueryCancelMidExecution proves an in-flight query observes ctx.Err
// on both serving paths: the parallel bounded executor and the scan
// fallback.
func TestQueryCancelMidExecution(t *testing.T) {
	eng := socialEngine(t, 1500, Options{})

	t.Run("parallel-bounded", func(t *testing.T) {
		ctx := cancelAfter(8)
		_, err := eng.Query(ctx, path3(1), WithWorkers(4))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled through the parallel executor, got %v", err)
		}
		if !ctx.checked() {
			t.Fatal("cancellation must have been observed mid-execution")
		}
	})

	t.Run("scan-fallback", func(t *testing.T) {
		// allPairs is unanchored (not bounded) and scans the whole Friend
		// relation — tens of thousands of tuples, far past the evaluator's
		// cancellation stride.
		var allPairs *cq.CQ
		for _, q := range workload.PatternQueries(1) {
			if q.Label == "allPairs" {
				allPairs = q
			}
		}
		if _, _, err := eng.Plan(allPairs); err == nil {
			t.Fatal("allPairs must not be bounded for this test to bite")
		}
		ctx := cancelAfter(8)
		_, err := eng.Query(ctx, allPairs)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled through the scan evaluator, got %v", err)
		}
	})
}

// TestQueryCancelDrainsWorkerPool cancels real in-flight parallel queries
// and verifies the worker pool unwinds without leaking goroutines.
func TestQueryCancelDrainsWorkerPool(t *testing.T) {
	eng := socialEngine(t, 1500, Options{})
	q := path3(1)
	if _, _, err := eng.Plan(q); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(200 * time.Microsecond)
				cancel()
			}()
			res, err := eng.Query(ctx, q, WithWorkers(4))
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("unexpected error: %v", err)
			}
			if err == nil && len(res.Rows) == 0 {
				t.Error("uncanceled query returned no rows")
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker pool leaked goroutines: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWithAccessBudget pins the admission-control semantics: a bounded
// query is refused exactly when its static bound exceeds the budget, and
// a non-bounded query can never be admitted under a budget (a scan has no
// static bound).
func TestWithAccessBudget(t *testing.T) {
	eng := newAccidentEngine(t)
	q := workload.Q0()
	_, bound, err := eng.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Fetched <= 0 {
		t.Fatalf("bound = %v", bound)
	}

	res, err := eng.Query(context.Background(), q, WithAccessBudget(bound.Fetched))
	if err != nil {
		t.Fatalf("budget == bound must admit: %v", err)
	}
	if res.Stats.Fetched > bound.Fetched {
		t.Fatalf("fetched %d exceeded the admitted bound %d", res.Stats.Fetched, bound.Fetched)
	}

	_, err = eng.Query(context.Background(), q, WithAccessBudget(bound.Fetched-1))
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("budget < bound must refuse with *BudgetError, got %v", err)
	}
	if be.Bound == nil || be.Bound.Fetched != bound.Fetched || be.Budget != bound.Fetched-1 {
		t.Fatalf("refusal must carry the bound and budget: %+v", be)
	}

	// Not bounded + budget: refused regardless of the scan fallback.
	q51, _ := workload.Q51()
	_, err = eng.Query(context.Background(), q51, WithAccessBudget(1<<40))
	if !errors.As(err, &be) {
		t.Fatalf("unbounded query under a budget must refuse, got %v", err)
	}
	if be.Bound != nil {
		t.Fatalf("no static bound exists for a scan: %+v", be)
	}
	// Without a budget the same query scans fine.
	if _, err := eng.Query(context.Background(), q51); err != nil {
		t.Fatalf("scan fallback without budget: %v", err)
	}
}

// TestResultColumnsEveryMode is the regression test for the scan path
// dropping column names: Result (and the legacy AutoResult) must carry
// Columns whichever mode answered.
func TestResultColumnsEveryMode(t *testing.T) {
	eng := newAccidentEngine(t)

	res, err := eng.Query(context.Background(), workload.Q0())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ViaBoundedPlan || fmt.Sprint(res.Columns) != fmt.Sprint(workload.Q0().Free) {
		t.Fatalf("bounded mode columns = %v (mode %v), want %v", res.Columns, res.Mode, workload.Q0().Free)
	}

	q51, _ := workload.Q51()
	res, err = eng.Query(context.Background(), q51)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ViaFullScan {
		t.Fatalf("Q51 should fall back to scan, got %v", res.Mode)
	}
	if fmt.Sprint(res.Columns) != fmt.Sprint(q51.Free) {
		t.Fatalf("scan mode columns = %v, want the free tuple %v", res.Columns, q51.Free)
	}
}

// TestQueryEnvelopeFallback serves a non-bounded query via its upper
// envelope: the result says so, carries the envelope, and its answers
// contain the exact ones.
func TestQueryEnvelopeFallback(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R",
		[]schema.Attribute{"A"}, []schema.Attribute{"B"}, 3))
	eng, err := New(s, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := data.NewInstance(s)
	d.MustInsert("R", iv(1), iv(42))
	d.MustInsert("R", iv(42), iv(1))
	d.MustInsert("R", iv(2), iv(3))
	if err := eng.Load(d); err != nil {
		t.Fatal(err)
	}
	// Example 4.1's Q1: bounded but not boundedly evaluable.
	q := &cq.CQ{
		Label: "Q41", Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("w"), cq.Var("x")),
			cq.NewAtom("R", cq.Var("y"), cq.Var("w")),
			cq.NewAtom("R", cq.Var("x"), cq.Var("z")),
		},
		Eqs: []cq.Eq{{L: cq.Var("w"), R: cq.Const(iv(1))}},
	}
	res, err := eng.Query(context.Background(), q, WithFallback(FallbackEnvelope))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ViaUpperEnvelope || res.Envelope == nil || res.Plan == nil || res.Bound == nil {
		t.Fatalf("envelope serving: mode=%v envelope=%v", res.Mode, res.Envelope)
	}
	exact, err := eng.Baseline(q, eval.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool, len(res.Rows))
	for _, r := range res.Rows {
		have[fmt.Sprint(r)] = true
	}
	for _, r := range exact.Rows {
		if !have[fmt.Sprint(r)] {
			t.Fatalf("envelope answers must contain the exact answers; missing %v", r)
		}
	}
	// The result reports the submitted query, not the relaxation.
	if res.Query != "Q41" {
		t.Fatalf("envelope result label = %q, want the submitted query's", res.Query)
	}
	// The envelope search and Qu's plan are memoized: a repeat request is
	// a cache hit and returns the identical answer.
	res2, err := eng.Query(context.Background(), q, WithFallback(FallbackEnvelope))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.CacheHit {
		t.Fatal("repeat envelope serving must hit the plan cache")
	}
	if !sameTuples(res2.Rows, res.Rows) {
		t.Fatal("cached envelope plan must return identical rows")
	}
	// Refuse mode surfaces the NotBoundedError instead.
	var nb *NotBoundedError
	if _, err := eng.Query(context.Background(), q, WithFallback(FallbackRefuse)); !errors.As(err, &nb) {
		t.Fatalf("refuse mode must return NotBoundedError, got %v", err)
	}
}

// TestUCQPlanCache pins the satellite fix for the documented cache gap:
// union plans (and non-covered verdicts) are memoized under the UCQ
// canonical key, including sub-query permutations and α-renamings.
func TestUCQPlanCache(t *testing.T) {
	eng, u := example35Engine(t)
	base := eng.CacheStats()

	first, err := eng.Query(context.Background(), u, WithFallback(FallbackRefuse))
	if err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Misses != base.Misses+1 || st.Hits != base.Hits {
		t.Fatalf("first union call must miss once: %+v", st)
	}

	second, err := eng.Query(context.Background(), u, WithFallback(FallbackRefuse))
	if err != nil {
		t.Fatal(err)
	}
	st = eng.CacheStats()
	if st.Hits != base.Hits+1 {
		t.Fatalf("repeat union call must hit the plan cache: %+v", st)
	}
	if !sameTuples(first.Rows, second.Rows) {
		t.Fatal("cached union plan must return identical rows")
	}

	// A permuted union has the same sorted-multiset key.
	perm, err := ucq.New("U35perm", u.Subs[1], u.Subs[0])
	if err != nil {
		t.Fatal(err)
	}
	permRes, err := eng.Query(context.Background(), perm)
	if err != nil {
		t.Fatal(err)
	}
	st = eng.CacheStats()
	if st.Hits != base.Hits+2 {
		t.Fatalf("permuted union must hit the same entry: %+v", st)
	}
	if permRes.Query != "U35perm" {
		t.Fatalf("cached plan must carry the caller's label, got %q", permRes.Query)
	}
	if !sameTuples(permRes.Rows, first.Rows) {
		t.Fatal("permuted union must return the same answer set")
	}

	// Non-covered unions cache their refusal too.
	free := &cq.CQ{Label: "Qfree", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))}}
	bad, err := ucq.New("Ubad", u.Subs[0], free)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(context.Background(), bad, WithFallback(FallbackRefuse)); err == nil {
		t.Fatal("uncovered union must refuse under FallbackRefuse semantics")
	}
	st = eng.CacheStats()
	if _, err := eng.Query(context.Background(), bad, WithFallback(FallbackRefuse)); err == nil {
		t.Fatal("uncovered union must refuse again")
	}
	if got := eng.CacheStats(); got.Hits != st.Hits+1 {
		t.Fatalf("the refusal verdict must be served from cache: %+v -> %+v", st, got)
	}
}

// TestExplainServedFromPlanCache pins the satellite fix for Explain
// re-running IsCovered/CheckBounded before Plan: on a hot query, Explain
// costs one cache hit and zero misses.
func TestExplainServedFromPlanCache(t *testing.T) {
	eng := accidentsEngine(t, Options{}, 2)
	q := workload.Q0()
	if _, _, err := eng.Plan(q); err != nil {
		t.Fatal(err)
	}
	base := eng.CacheStats()
	out, err := eng.Explain(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Misses != base.Misses || st.Hits != base.Hits+1 {
		t.Fatalf("Explain after Plan must be pure cache: %+v -> %+v", base, st)
	}
	for _, want := range []string{"covered: true", "BEP verdict: bounded", "plan Q0", "access bound"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}

	// The not-bounded verdict is cached and explained from cache too.
	q51, _ := workload.Q51()
	if _, _, err := eng.Plan(q51); err == nil {
		t.Fatal("Q51 must not be bounded")
	}
	base = eng.CacheStats()
	out, err = eng.Explain(q51, []string{"date", "xm"})
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Misses != base.Misses {
		t.Fatalf("Explain of a cached refusal must not re-plan: %+v -> %+v", base, st)
	}
	if !strings.Contains(out, "unknown") {
		t.Fatalf("Q51 verdict missing:\n%s", out)
	}
}

// TestQueryStream pins the streaming contract: rows arrive through Seq
// without Rows being materialized, identical to the materialized answer;
// stats land after the drain; early breaks are clean; the iterator is
// single-use.
func TestQueryStream(t *testing.T) {
	eng := newAccidentEngine(t)
	q := workload.Q0()
	want, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	res, err := eng.Query(context.Background(), q, WithStream())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != nil {
		t.Fatal("streamed result must not materialize Rows")
	}
	var got []data.Tuple
	for row := range res.Seq() {
		got = append(got, row)
	}
	if res.Err() != nil {
		t.Fatalf("stream error: %v", res.Err())
	}
	if !sameTuples(got, want.Rows) {
		t.Fatal("streamed rows must match the materialized answer, in order")
	}
	if res.Stats.Fetched != want.Stats.Fetched || res.Stats.FetchKeys != want.Stats.FetchKeys {
		t.Fatalf("streamed stats %+v, want %+v", res.Stats, want.Stats)
	}
	// Single-use: a second drain yields nothing.
	for range res.Seq() {
		t.Fatal("stream iterator must be single-use")
	}

	// Early break: stop after one row, no error.
	res2, err := eng.Query(context.Background(), q, WithStream())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range res2.Seq() {
		n++
		break
	}
	if n != 1 || res2.Err() != nil {
		t.Fatalf("early break: n=%d err=%v", n, res2.Err())
	}

	// The scan path streams too (buffered internally, deferred).
	q51, _ := workload.Q51()
	wantScan, err := eng.Query(context.Background(), q51)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := eng.Query(context.Background(), q51, WithStream())
	if err != nil {
		t.Fatal(err)
	}
	got = got[:0]
	for row := range res3.Seq() {
		got = append(got, row)
	}
	if res3.Err() != nil || !sameTuples(got, wantScan.Rows) {
		t.Fatalf("streamed scan diverges (err=%v)", res3.Err())
	}
	if res3.Stats.Scanned != wantScan.Stats.Scanned {
		t.Fatalf("streamed scan stats %+v, want %+v", res3.Stats, wantScan.Stats)
	}
}

// TestWithDeadline pins deadline semantics: an expired deadline stops the
// request with context.DeadlineExceeded before data is served.
func TestWithDeadline(t *testing.T) {
	eng := newAccidentEngine(t)
	_, err := eng.Query(context.Background(), workload.Q0(),
		WithDeadline(time.Now().Add(-time.Second)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	// A generous deadline serves normally.
	if _, err := eng.Query(context.Background(), workload.Q0(),
		WithDeadline(time.Now().Add(time.Minute))); err != nil {
		t.Fatal(err)
	}
}

// TestQueryServesPosFO routes an ∃FO⁺ formula through the unified entry
// point: normalization to a UCQ happens inside Query.
func TestQueryServesPosFO(t *testing.T) {
	eng, u := example35Engine(t)
	f := &posfo.Query{
		Label: "F", Free: []string{"y"},
		Body: posfo.Or{Fs: []posfo.Formula{
			posfo.And{Fs: []posfo.Formula{
				posfo.Atom{Rel: "Rp", Args: []cq.Term{cq.Var("x"), cq.Var("y"), cq.Var("z")}},
				posfo.Eq{L: cq.Var("x"), R: cq.Const(iv(1))},
			}},
		}},
	}
	res, err := eng.Query(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	// Rp(1, y, z) holds for y ∈ {10, 20} in the Example 3.5 instance.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	_ = u
}

// TestScanStreamObservesDeadline is the regression test for the
// streamed-scan deadline hole: the conventional evaluator honored ctx
// while COMPUTING the answer, but the emission loop that feeds the
// buffered rows to a slow consumer never looked at it again — so a
// request whose deadline struck mid-emission streamed every row and
// reported no error (bequery -stream then exited 0 on a truncated-
// in-time pipeline). The emit loop must cut the stream and surface the
// deadline through Result.Err.
func TestScanStreamObservesDeadline(t *testing.T) {
	eng := socialEngine(t, 100, Options{})
	allPairs := workload.PatternQueries(1)[4]
	if allPairs.Label != "allPairs" {
		t.Fatal("workload pattern order changed")
	}
	// Reference: the full scan answer, materialized.
	full, err := eng.Query(context.Background(), allPairs)
	if err != nil {
		t.Fatal(err)
	}
	if full.Mode != ViaFullScan {
		t.Fatalf("allPairs must fall back to a scan, got %v", full.Mode)
	}
	total := len(full.Rows)
	if total < 1024 {
		t.Fatalf("fixture too small to cross the emit stride: %d rows", total)
	}

	// Evaluation finishes well inside the deadline; the slow consumer
	// (0.5ms/row, like a congested network write) makes emission cross
	// it after ~120 rows, so the first stride check must cut the stream.
	res, err := eng.Query(context.Background(), allPairs,
		WithStream(), WithDeadline(time.Now().Add(60*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	consumed := 0
	for range res.Seq() {
		consumed++
		time.Sleep(500 * time.Microsecond)
	}
	if res.Err() == nil {
		t.Fatalf("stream consumed %d/%d rows past the deadline with a nil Err", consumed, total)
	}
	if !errors.Is(res.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want a DeadlineExceeded", res.Err())
	}
	if consumed >= total {
		t.Fatalf("deadline did not cut the stream: %d of %d rows emitted", consumed, total)
	}
}
