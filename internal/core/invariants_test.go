package core

// Cross-package invariant tests: the properties that make the whole system
// trustworthy, checked over randomized workloads rather than fixtures.
//
//  1. Soundness of plan synthesis (Theorem 3.11(2)): for every covered
//     query the bounded plan's answer equals naive evaluation, on many
//     random instances.
//  2. The static access bound dominates actual fetches everywhere.
//  3. Coverage is monotone in the access schema.
//  4. BEP rewrites preserve answers (chase + redundant-atom drops).
//  5. Envelope sandwich: Ql(D) ⊆ Q(D) ⊆ Qu(D) with errors within Nl/Nu.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/access"
	"repro/internal/bep"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/envelope"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/workload"
)

// randomWorkload generates queries over the accident schema with anchors.
func randomWorkload(t *testing.T, n int, seed int64) []*cq.CQ {
	t.Helper()
	consts := map[schema.Attribute][]cq.Term{
		"date":     {cq.Const(value.NewString(workload.DateName(0))), cq.Const(value.NewString(workload.DateName(1)))},
		"district": {cq.Const(value.NewString(workload.Districts[0]))},
		"aid":      {cq.Const(value.NewInt(2))},
		"vid":      {cq.Const(value.NewInt(3))},
	}
	qs, err := workload.RandomCQs(workload.AccidentSchema(), workload.RandomCQConfig{
		Queries: n, MaxAtoms: 3, StartProb: 0.9, FreeVars: 2, Seed: seed,
	}, consts)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

func TestInvariantCoveredPlansAgreeWithNaive(t *testing.T) {
	s := workload.AccidentSchema()
	a := workload.AccidentConstraints()
	qs := randomWorkload(t, 120, 21)
	instances := make([]*data.Instance, 0, 3)
	for seed := int64(0); seed < 3; seed++ {
		acc, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: 2 + int(seed), AccidentsPerDay: 4, MaxVehicles: 3, Seed: 40 + seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, acc.Instance)
	}
	coveredCount := 0
	for _, q := range qs {
		res, err := cover.Check(q, a, s, cover.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Covered {
			continue
		}
		coveredCount++
		p, err := plan.Build(res, plan.BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", q.Label, err)
		}
		bound, err := plan.AccessBound(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", q.Label, err)
		}
		for di, d := range instances {
			ix, viols, err := access.BuildIndexed(a, d)
			if err != nil {
				t.Fatal(err)
			}
			if len(viols) != 0 {
				t.Fatalf("instance %d violates A: %v", di, viols)
			}
			got, stats, err := plan.Execute(p, ix)
			if err != nil {
				t.Fatalf("%s on instance %d: %v", q.Label, di, err)
			}
			want, err := eval.CQ(q, d, eval.ScanJoin)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRowSet(got.Rows, want.Rows) {
				t.Fatalf("%s on instance %d: plan %v != naive %v\nquery: %s\nplan:\n%s",
					q.Label, di, got.Rows, want.Rows, q, p)
			}
			// Invariant 2: the static bound dominates actual fetches.
			if stats.Fetched > bound.Fetched {
				t.Errorf("%s: fetched %d exceeds static bound %d", q.Label, stats.Fetched, bound.Fetched)
			}
		}
	}
	if coveredCount < 10 {
		t.Fatalf("workload too degenerate: only %d covered queries", coveredCount)
	}
	t.Logf("verified %d covered queries across %d instances", coveredCount, len(instances))
}

func sameRowSet(a, b []data.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	keys := make(map[value.Key]bool, len(a))
	for _, t := range a {
		keys[t.Key()] = true
	}
	for _, t := range b {
		if !keys[t.Key()] {
			return false
		}
	}
	return true
}

func TestInvariantCoverageMonotoneInA(t *testing.T) {
	s := workload.AccidentSchema()
	full := workload.AccidentConstraints()
	qs := randomWorkload(t, 60, 22)
	for take := 1; take < len(full.Constraints); take++ {
		smaller := access.NewSchema(full.Constraints[:take]...)
		for _, q := range qs {
			r1, err := cover.Analyze(q, smaller, s, cover.Options{})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := cover.Analyze(q, full, s, cover.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for v := range r1.Covered {
				if !r2.Covered[v] {
					t.Fatalf("%s: cov shrank when adding constraints (%s lost)", q.Label, v)
				}
			}
		}
	}
}

func TestInvariantBEPWitnessPreservesAnswers(t *testing.T) {
	s := workload.AccidentSchema()
	a := workload.AccidentConstraints()
	qs := randomWorkload(t, 80, 23)
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 3, AccidentsPerDay: 5, MaxVehicles: 3, Seed: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := acc.Instance
	for _, q := range qs {
		dec, err := bep.Decide(q, a, s, bep.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Verdict != bep.Bounded || dec.Witness == nil {
			continue
		}
		// The witness must be A-equivalent: same answers on D |= A.
		wantRes, err := eval.CQ(q, d, eval.ScanJoin)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, err := eval.CQ(dec.Witness, d, eval.ScanJoin)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRowSet(gotRes.Rows, wantRes.Rows) {
			t.Fatalf("%s: witness changed answers\noriginal: %s -> %v\nwitness: %s -> %v",
				q.Label, q, wantRes.Rows, dec.Witness, gotRes.Rows)
		}
	}
}

func TestInvariantEnvelopeSandwichRandomized(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []schema.Attribute{"A"}, []schema.Attribute{"B"}, 3))
	q := &cq.CQ{
		Label: "Q41", Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("w"), cq.Var("x")),
			cq.NewAtom("R", cq.Var("y"), cq.Var("w")),
			cq.NewAtom("R", cq.Var("x"), cq.Var("z")),
		},
		Eqs: []cq.Eq{{L: cq.Var("w"), R: cq.Const(value.NewInt(1))}},
	}
	up, err := envelope.FindUpper(q, a, s, envelope.Options{})
	if err != nil || !up.Found {
		t.Fatal(err, up)
	}
	lo, err := envelope.FindLower(q, a, s, 1, envelope.Options{})
	if err != nil || !lo.Found {
		t.Fatal(err, lo)
	}
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		d := data.NewInstance(s)
		used := map[int64]int{}
		for i := 0; i < 60; i++ {
			av := int64(rng.Intn(12))
			if used[av] >= 3 {
				continue
			}
			used[av]++
			d.MustInsert("R", value.NewInt(av), value.NewInt(int64(rng.Intn(12))))
		}
		exact, err := eval.CQ(q, d, eval.ScanJoin)
		if err != nil {
			t.Fatal(err)
		}
		upper, err := eval.CQ(up.Qu, d, eval.ScanJoin)
		if err != nil {
			t.Fatal(err)
		}
		lower, err := eval.CQ(lo.Ql, d, eval.ScanJoin)
		if err != nil {
			t.Fatal(err)
		}
		if !subset(lower.Rows, exact.Rows) || !subset(exact.Rows, upper.Rows) {
			t.Fatalf("trial %d: sandwich violated\nQl=%v\nQ=%v\nQu=%v", trial,
				lower.Rows, exact.Rows, upper.Rows)
		}
		if over := len(upper.Rows) - len(exact.Rows); int64(over) > up.Nu {
			t.Errorf("trial %d: |Qu−Q| = %d exceeds Nu = %d", trial, over, up.Nu)
		}
		if under := len(exact.Rows) - len(lower.Rows); int64(under) > lo.Nl {
			t.Errorf("trial %d: |Q−Ql| = %d exceeds Nl = %d", trial, under, lo.Nl)
		}
	}
}

func subset(sub, sup []data.Tuple) bool {
	have := make(map[value.Key]bool, len(sup))
	for _, t := range sup {
		have[t.Key()] = true
	}
	for _, t := range sub {
		if !have[t.Key()] {
			return false
		}
	}
	return true
}

// TestInvariantSpecializedQueriesStayBounded: every parameter set QSP
// returns really does make every concrete instantiation covered.
func TestInvariantSpecializedQueriesStayBounded(t *testing.T) {
	s := workload.AccidentSchema()
	a := workload.AccidentConstraints()
	q, params := workload.Q51()
	eng, err := New(s, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Specialize(q, params, 2)
	if err != nil || !res.Found {
		t.Fatal(err, res)
	}
	// Try a batch of concrete valuations; all must be covered.
	for i := 0; i < 10; i++ {
		vals := map[string]value.Value{}
		for _, p := range res.Params {
			vals[p] = value.NewString(fmt.Sprintf("val-%d-%s", i, p))
		}
		spec := q.Clone()
		for p, v := range vals {
			spec.Eqs = append(spec.Eqs, cq.Eq{L: cq.Var(p), R: cq.Const(v)})
		}
		cres, err := eng.IsCovered(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !cres.Covered {
			t.Fatalf("valuation %d of %v is not covered:\n%s", i, res.Params, cres.Explain())
		}
	}
}
