package core

import (
	"container/list"
	"sync"

	"repro/internal/bep"
	"repro/internal/envelope"
	"repro/internal/plan"
)

// DefaultPlanCacheSize is the plan-cache capacity when Options.PlanCache
// is zero.
const DefaultPlanCacheSize = 256

// planEntry is one cached planning outcome for a canonical query shape:
// either a synthesized plan with its static access bound, or the
// not-bounded decision. Entries are immutable once cached — callers must
// copy before mutating (Engine.Plan copies the Plan header to relabel it).
type planEntry struct {
	key        string
	p          *plan.Plan
	bound      plan.Bound
	notBounded *NotBoundedError
	// dec is the BEP decision behind a bounded CQ entry, kept so Explain
	// can report diagnostics at cache speed (nil for UCQ entries; the
	// not-bounded case carries its decision inside notBounded).
	dec *bep.Decision
	// envelope is set on "env:" entries: the memoized upper-envelope
	// search outcome for a not-bounded query shape (nil plan + nil
	// envelope = no envelope exists).
	envelope *envelope.Upper
}

// CacheStats reports plan-cache effectiveness counters.
type CacheStats struct {
	// Hits and Misses count plan-cache lookups, cumulatively: the
	// counters survive Load and Apply.
	Hits, Misses int64
	// Entries is the current number of cached shapes.
	Entries int
}

// planCache is a concurrency-safe LRU cache of planning outcomes keyed by
// cq.CanonicalKey. All methods are safe for concurrent use.
type planCache struct {
	mu       sync.Mutex
	capacity int                      // immutable after newPlanCache
	ll       *list.List               // guarded by mu; front = most recently used; values are *planEntry
	items    map[string]*list.Element // guarded by mu
	hits     int64                    // guarded by mu
	misses   int64                    // guarded by mu
	// size is the |D| of the latest restamp. Entries are normalized to it
	// on put, so a planning pass that read an older snapshot cannot land
	// a bound the concurrent restamp would have refreshed.
	//
	// guarded by mu
	size int
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the entry for key, promoting it to most-recently-used.
func (c *planCache) get(key string) (*planEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*planEntry), true
}

// put inserts (or refreshes) an entry, evicting the least-recently-used
// one beyond capacity. The entry's bound is normalized to the cache's
// current instance size first: planning runs outside the writer lock, so
// without this a put racing a Load/Apply could publish a bound computed
// against the pre-update size and have it served until the next update.
func (c *planCache) put(e *planEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.p != nil && e.bound.SizeHint != c.size {
		if planDependsOnSize(e.p) {
			b, err := plan.AccessBound(e.p, c.size)
			if err != nil {
				return // cannot normalize: skip caching rather than serve a stale bound
			}
			e.bound = b
		} else {
			e.bound.SizeHint = c.size
		}
	}
	if el, ok := c.items[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*planEntry).key)
	}
}

// restamp refreshes the cache for a new instance size (after Load or
// Apply). Plans and not-bounded verdicts are data-independent given the
// access schema, so entries survive; only a bound that embeds the |D|
// size hint — a plan fetching through a general-form constraint s(|D|) —
// is stale, and those entries are re-stamped with a bound recomputed at
// the new size rather than dropped. Hit/miss counters are cumulative and
// survive too. An entry whose bound cannot be recomputed (cannot happen
// for plans that bounded once, but guarded anyway) is evicted.
func (c *planCache) restamp(newSize int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.size = newSize
	var drop []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*planEntry)
		if ent.p == nil {
			continue // not-bounded / negative-envelope verdicts: size-free
		}
		restamped := *ent
		if planDependsOnSize(ent.p) {
			b, err := plan.AccessBound(ent.p, newSize)
			if err != nil {
				drop = append(drop, el)
				continue
			}
			restamped.bound = b
		} else {
			// The bound's values are size-independent; refresh only the
			// size hint it reports.
			restamped.bound.SizeHint = newSize
		}
		el.Value = &restamped
	}
	for _, el := range drop {
		c.ll.Remove(el)
		delete(c.items, el.Value.(*planEntry).key)
	}
}

// planDependsOnSize reports whether p's static bound is a function of
// |D|: true iff some fetch goes through a general-form constraint.
func planDependsOnSize(p *plan.Plan) bool {
	for _, op := range p.Steps {
		if f, ok := op.(plan.FetchOp); ok && !f.Constraint.Card.IsConst() {
			return true
		}
	}
	return false
}

// stats snapshots the counters.
func (c *planCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}
