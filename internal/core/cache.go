package core

import (
	"container/list"
	"sync"

	"repro/internal/bep"
	"repro/internal/envelope"
	"repro/internal/plan"
)

// DefaultPlanCacheSize is the plan-cache capacity when Options.PlanCache
// is zero.
const DefaultPlanCacheSize = 256

// planEntry is one cached planning outcome for a canonical query shape:
// either a synthesized plan with its static access bound, or the
// not-bounded decision. Entries are immutable once cached — callers must
// copy before mutating (Engine.Plan copies the Plan header to relabel it).
type planEntry struct {
	key        string
	p          *plan.Plan
	bound      plan.Bound
	notBounded *NotBoundedError
	// dec is the BEP decision behind a bounded CQ entry, kept so Explain
	// can report diagnostics at cache speed (nil for UCQ entries; the
	// not-bounded case carries its decision inside notBounded).
	dec *bep.Decision
	// envelope is set on "env:" entries: the memoized upper-envelope
	// search outcome for a not-bounded query shape (nil plan + nil
	// envelope = no envelope exists).
	envelope *envelope.Upper
}

// CacheStats reports plan-cache effectiveness counters.
type CacheStats struct {
	// Hits and Misses count Engine.Plan lookups since the last purge.
	Hits, Misses int64
	// Entries is the current number of cached shapes.
	Entries int
}

// planCache is a concurrency-safe LRU cache of planning outcomes keyed by
// cq.CanonicalKey. All methods are safe for concurrent use.
type planCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *planEntry
	items    map[string]*list.Element
	hits     int64
	misses   int64
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the entry for key, promoting it to most-recently-used.
func (c *planCache) get(key string) (*planEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*planEntry), true
}

// put inserts (or refreshes) an entry, evicting the least-recently-used
// one beyond capacity.
func (c *planCache) put(e *planEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*planEntry).key)
	}
}

// purge drops every entry and resets the counters. Called on Load: a new
// instance changes size hints, so cached bounds (and general-form fetch
// cardinalities) are stale.
func (c *planCache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.capacity)
	c.hits, c.misses = 0, 0
}

// stats snapshots the counters.
func (c *planCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}
