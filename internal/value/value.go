// Package value defines the constant domain D over which database
// instances and queries are interpreted.
//
// A Value is a small, comparable tagged union of the kinds that appear in
// the paper's examples (strings such as "Queen's Park", integers such as
// ages and dates encoded as day numbers). Values are valid map keys, which
// the index and plan layers rely on.
package value

import (
	"fmt"
	"strconv"
)

// Kind discriminates the representation of a Value.
type Kind uint8

const (
	// Null is the zero Value's kind. It never appears in a stored tuple;
	// it is useful as an "absent" sentinel in builders.
	Null Kind = iota
	// Int is a 64-bit signed integer constant.
	Int
	// String is a string constant.
	String
)

func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Int:
		return "int"
	case String:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a constant from the countably infinite domain D. The zero Value
// is the Null value.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// NewInt returns the integer constant i.
func NewInt(i int64) Value { return Value{kind: Int, i: i} }

// NewString returns the string constant s.
func NewString(s string) Value { return Value{kind: String, s: s} }

// Kind reports the kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the Null value.
func (v Value) IsNull() bool { return v.kind == Null }

// Int returns the integer payload. It is only meaningful when Kind is Int.
func (v Value) Int() int64 { return v.i }

// Str returns the string payload. It is only meaningful when Kind is String.
func (v Value) Str() string { return v.s }

// String renders v the way the parser would accept it back: integers bare,
// strings double-quoted, null as the keyword null.
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "null"
	case Int:
		return strconv.FormatInt(v.i, 10)
	case String:
		return strconv.Quote(v.s)
	default:
		return fmt.Sprintf("value(%d)", uint8(v.kind))
	}
}

// Less imposes a total order on values: Null < Int < String, then by payload.
// It is used only for deterministic output ordering, never for semantics.
func (v Value) Less(w Value) bool {
	if v.kind != w.kind {
		return v.kind < w.kind
	}
	switch v.kind {
	case Int:
		return v.i < w.i
	case String:
		return v.s < w.s
	default:
		return false
	}
}

// Compare returns -1, 0, or +1 per the Less order.
func (v Value) Compare(w Value) int {
	switch {
	case v == w:
		return 0
	case v.Less(w):
		return -1
	default:
		return 1
	}
}

// Parse interprets a literal the way the query parser does: a leading digit
// or sign makes it an integer, anything else is taken as a string constant.
func Parse(s string) Value {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return NewInt(n)
	}
	return NewString(s)
}
