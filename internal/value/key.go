package value

import (
	"encoding/binary"
	"strings"
)

// Key is a compact, comparable encoding of a sequence of Values. It is the
// bucket key type used by the index substrate and by hash joins: two value
// sequences encode to the same Key iff they are element-wise equal.
type Key string

// KeyOf encodes vals into a Key. The encoding is injective: each element is
// tagged with its kind and length-prefixed, so ("a","b") and ("ab",) differ.
// Every index probe and hash-join bucket goes through a key encode, so
// this must not pick up incidental allocation.
//
//bevet:hotpath
func KeyOf(vals ...Value) Key {
	var b strings.Builder
	// Rough preallocation: tag+len plus payload per value.
	n := 0
	for _, v := range vals {
		n += 10 + len(v.s)
	}
	b.Grow(n)
	var buf [binary.MaxVarintLen64]byte
	for _, v := range vals {
		b.WriteByte(byte(v.kind))
		switch v.kind {
		case Int:
			k := binary.PutVarint(buf[:], v.i)
			b.Write(buf[:k])
		case String:
			k := binary.PutUvarint(buf[:], uint64(len(v.s)))
			b.Write(buf[:k])
			b.WriteString(v.s)
		}
	}
	return Key(b.String())
}

// KeyOfAt encodes the projection of row onto positions cols. It avoids the
// intermediate slice that KeyOf(project(row, cols)...) would allocate.
//
//bevet:hotpath
func KeyOfAt(row []Value, cols []int) Key {
	var b strings.Builder
	n := 0
	for _, c := range cols {
		n += 10 + len(row[c].s)
	}
	b.Grow(n)
	var buf [binary.MaxVarintLen64]byte
	for _, c := range cols {
		v := row[c]
		b.WriteByte(byte(v.kind))
		switch v.kind {
		case Int:
			k := binary.PutVarint(buf[:], v.i)
			b.Write(buf[:k])
		case String:
			k := binary.PutUvarint(buf[:], uint64(len(v.s)))
			b.Write(buf[:k])
			b.WriteString(v.s)
		}
	}
	return Key(b.String())
}
