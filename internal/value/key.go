package value

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Key is a compact, comparable encoding of a sequence of Values. It is the
// bucket key type used by the index substrate and by hash joins: two value
// sequences encode to the same Key iff they are element-wise equal.
type Key string

// KeyOf encodes vals into a Key. The encoding is injective: each element is
// tagged with its kind and length-prefixed, so ("a","b") and ("ab",) differ.
// Every index probe and hash-join bucket goes through a key encode, so
// this must not pick up incidental allocation.
//
//bevet:hotpath
func KeyOf(vals ...Value) Key {
	var b strings.Builder
	// Rough preallocation: tag+len plus payload per value.
	n := 0
	for _, v := range vals {
		n += 10 + len(v.s)
	}
	b.Grow(n)
	var buf [binary.MaxVarintLen64]byte
	for _, v := range vals {
		b.WriteByte(byte(v.kind))
		switch v.kind {
		case Int:
			k := binary.PutVarint(buf[:], v.i)
			b.Write(buf[:k])
		case String:
			k := binary.PutUvarint(buf[:], uint64(len(v.s)))
			b.Write(buf[:k])
			b.WriteString(v.s)
		}
	}
	return Key(b.String())
}

// uvarintStr is binary.Uvarint over a string tail, so decoding never
// converts the tail to []byte (which allocates and copies per call). It
// additionally rejects non-canonical encodings — varints padded with
// zero high-order groups — since a padded group's final byte is 0x00
// and a minimal multi-byte encoding's never is. Returns consumed
// bytes, or 0 on truncated/overflowing/non-canonical input.
func uvarintStr(s string, i int) (uint64, int) {
	var x uint64
	var shift uint
	for n := 0; i+n < len(s); n++ {
		b := s[i+n]
		if b < 0x80 {
			if n > 0 && b == 0 {
				return 0, 0 // non-canonical padding
			}
			if n == 9 && b > 1 {
				return 0, 0 // overflows uint64
			}
			return x | uint64(b)<<shift, n + 1
		}
		if n == 9 {
			return 0, 0 // more than MaxVarintLen64 bytes
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0 // truncated
}

// DecodeKey parses a Key back into the value sequence that produced it.
// It is the exact inverse of KeyOf: on success, KeyOf(vals...) reproduces
// k byte for byte. Non-canonical encodings are rejected rather than
// normalised, so a Key either round-trips exactly or fails to decode.
// The checkpoint codec relies on this to store tuples as their Keys and
// still guarantee that decode-then-encode is a fixed point. Decoded
// string values share k's backing memory.
func DecodeKey(k Key) ([]Value, error) {
	return AppendDecodeKey(nil, k)
}

// AppendDecodeKey is DecodeKey appending into dst, for bulk decoders
// that carve many small value slices out of one arena allocation
// instead of paying one allocation per key.
func AppendDecodeKey(dst []Value, k Key) ([]Value, error) {
	vals := dst
	for i := 0; i < len(k); {
		v, next, err := DecodeKeyCell(k, i)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		i = next
	}
	return vals, nil
}

// DecodeKeyCell decodes the single value starting at byte offset i of k,
// returning it with the offset just past its encoding — the per-cell
// inverse of AppendValueKey. Bulk restorers use it to stream a key's
// cells straight into columnar storage without materializing a []Value
// per tuple. Decoded string values share k's backing memory.
func DecodeKeyCell(k Key, i int) (Value, int, error) {
	b := string(k)
	if i >= len(b) {
		return Value{}, 0, fmt.Errorf("value: key offset %d: truncated cell", i)
	}
	kind := Kind(b[i])
	i++
	switch kind {
	case Null:
		return Value{}, i, nil
	case Int:
		u, n := uvarintStr(b, i)
		if n == 0 {
			return Value{}, 0, fmt.Errorf("value: key offset %d: bad varint", i)
		}
		i += n
		// Undo binary.PutVarint's zig-zag mapping.
		v := int64(u >> 1)
		if u&1 != 0 {
			v = ^v
		}
		return NewInt(v), i, nil
	case String:
		l, n := uvarintStr(b, i)
		if n == 0 {
			return Value{}, 0, fmt.Errorf("value: key offset %d: bad length varint", i)
		}
		i += n
		if l > uint64(len(b)-i) {
			return Value{}, 0, fmt.Errorf("value: key offset %d: string length %d overruns key", i, l)
		}
		return NewString(b[i : i+int(l)]), i + int(l), nil
	default:
		return Value{}, 0, fmt.Errorf("value: key offset %d: unknown kind %d", i-1, uint8(kind))
	}
}

// AppendKey appends the Key encoding of vals to dst and returns the
// extended slice. It is KeyOf for callers that scan many tuples and
// want to reuse one scratch buffer instead of materializing a string
// per tuple; dst[:0] round trips make the loop allocation-free, and a
// map lookup via m[Key(dst)] compiles without a copy.
func AppendKey(dst []byte, vals ...Value) []byte {
	var buf [binary.MaxVarintLen64]byte
	for _, v := range vals {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case Int:
			k := binary.PutVarint(buf[:], v.i)
			dst = append(dst, buf[:k]...)
		case String:
			k := binary.PutUvarint(buf[:], uint64(len(v.s)))
			dst = append(dst, buf[:k]...)
			dst = append(dst, v.s...)
		}
	}
	return dst
}

// AppendValueKey appends the Key encoding of the single value v to dst.
// It is the per-cell building block of AppendKey for callers that walk a
// columnar row: a variadic AppendKey(dst, v) call would box v into a
// fresh one-element slice on every cell.
//
//bevet:hotpath
func AppendValueKey(dst []byte, v Value) []byte {
	var buf [binary.MaxVarintLen64]byte
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case Int:
		k := binary.PutVarint(buf[:], v.i)
		dst = append(dst, buf[:k]...)
	case String:
		k := binary.PutUvarint(buf[:], uint64(len(v.s)))
		dst = append(dst, buf[:k]...)
		dst = append(dst, v.s...)
	}
	return dst
}

// AppendKeyAt appends the Key encoding of the projection of row onto
// positions cols — AppendKey's positional counterpart, and KeyOfAt for
// callers reusing one scratch buffer across a scan.
//
//bevet:hotpath
func AppendKeyAt(dst []byte, row []Value, cols []int) []byte {
	var buf [binary.MaxVarintLen64]byte
	for _, c := range cols {
		v := row[c]
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case Int:
			k := binary.PutVarint(buf[:], v.i)
			dst = append(dst, buf[:k]...)
		case String:
			k := binary.PutUvarint(buf[:], uint64(len(v.s)))
			dst = append(dst, buf[:k]...)
			dst = append(dst, v.s...)
		}
	}
	return dst
}

// KeyOfAt encodes the projection of row onto positions cols. It avoids the
// intermediate slice that KeyOf(project(row, cols)...) would allocate.
//
//bevet:hotpath
func KeyOfAt(row []Value, cols []int) Key {
	var b strings.Builder
	n := 0
	for _, c := range cols {
		n += 10 + len(row[c].s)
	}
	b.Grow(n)
	var buf [binary.MaxVarintLen64]byte
	for _, c := range cols {
		v := row[c]
		b.WriteByte(byte(v.kind))
		switch v.kind {
		case Int:
			k := binary.PutVarint(buf[:], v.i)
			b.Write(buf[:k])
		case String:
			k := binary.PutUvarint(buf[:], uint64(len(v.s)))
			b.Write(buf[:k])
			b.WriteString(v.s)
		}
	}
	return Key(b.String())
}
