package value

import (
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	var zero Value
	if !zero.IsNull() || zero.Kind() != Null {
		t.Fatalf("zero value should be Null, got %v", zero)
	}
	i := NewInt(42)
	if i.Kind() != Int || i.Int() != 42 {
		t.Fatalf("NewInt: got %v", i)
	}
	s := NewString("hi")
	if s.Kind() != String || s.Str() != "hi" {
		t.Fatalf("NewString: got %v", s)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Value{}, "null"},
		{NewInt(-7), "-7"},
		{NewInt(0), "0"},
		{NewString("Queen's Park"), `"Queen's Park"`},
		{NewString(""), `""`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	if v := Parse("610"); v != NewInt(610) {
		t.Errorf("Parse(610) = %v", v)
	}
	if v := Parse("-3"); v != NewInt(-3) {
		t.Errorf("Parse(-3) = %v", v)
	}
	if v := Parse("1/5/2005"); v != NewString("1/5/2005") {
		t.Errorf("Parse(date) = %v", v)
	}
}

func TestEqualityIsStructural(t *testing.T) {
	if NewInt(1) != NewInt(1) {
		t.Error("equal ints must compare equal")
	}
	if NewInt(1) == NewString("1") {
		t.Error("int 1 and string \"1\" must differ")
	}
	if NewString("a") == NewString("b") {
		t.Error("distinct strings must differ")
	}
}

func TestLessTotalOrder(t *testing.T) {
	ordered := []Value{{}, NewInt(-5), NewInt(0), NewInt(9), NewString(""), NewString("a"), NewString("b")}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Less(ordered[j])
			want := i < j
			if got != want {
				t.Errorf("Less(%v,%v) = %v, want %v", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareConsistentWithLess(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		c := va.Compare(vb)
		switch {
		case a < b:
			return c == -1
		case a == b:
			return c == 0
		default:
			return c == 1
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyInjectivity(t *testing.T) {
	// Classic concatenation pitfall: ("a","b") vs ("ab").
	if KeyOf(NewString("a"), NewString("b")) == KeyOf(NewString("ab")) {
		t.Error("KeyOf must be injective across element boundaries")
	}
	if KeyOf(NewInt(12)) == KeyOf(NewString("12")) {
		t.Error("KeyOf must distinguish kinds")
	}
	if KeyOf() != KeyOf() {
		t.Error("empty keys must be equal")
	}
}

func TestKeyOfAtMatchesKeyOf(t *testing.T) {
	row := []Value{NewInt(1), NewString("x"), NewInt(3), NewString("yz")}
	cols := []int{3, 0}
	want := KeyOf(row[3], row[0])
	if got := KeyOfAt(row, cols); got != want {
		t.Errorf("KeyOfAt = %q, want %q", got, want)
	}
}

func TestKeyOfQuick(t *testing.T) {
	// Property: equal slices give equal keys; a changed element changes the key.
	f := func(a, b int64, s string) bool {
		k1 := KeyOf(NewInt(a), NewString(s), NewInt(b))
		k2 := KeyOf(NewInt(a), NewString(s), NewInt(b))
		if k1 != k2 {
			return false
		}
		k3 := KeyOf(NewInt(a), NewString(s), NewInt(b+1))
		return k1 != k3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
