// Package repro's top-level benchmarks regenerate the performance side of
// every experiment in EXPERIMENTS.md (E1–E10) as testing.B benchmarks,
// plus the design-choice ablations called out in DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/ainstance"
	"repro/internal/bench"
	"repro/internal/bep"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/envelope"
	"repro/internal/eval"
	"repro/internal/live"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/specialize"
	"repro/internal/value"
	"repro/internal/workload"
)

func attrs(as ...schema.Attribute) []schema.Attribute { return as }

func mustAccidents(b *testing.B, days int) (*workload.Accidents, *core.Engine) {
	b.Helper()
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: days, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.New(acc.Schema, acc.Access, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(acc.Instance); err != nil {
		b.Fatal(err)
	}
	return acc, eng
}

// BenchmarkE1BoundedVsScan is Example 1.1's table: Q0 via the bounded plan
// against both conventional baselines, at a fixed scale.
func BenchmarkE1BoundedVsScan(b *testing.B) {
	acc, eng := mustAccidents(b, 60)
	q := workload.Q0()
	p, _, err := eng.Plan(q)
	if err != nil {
		b.Fatal(err)
	}
	ix, _, err := access.BuildIndexed(acc.Access, acc.Instance)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := plan.Execute(p, ix); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hashjoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.CQ(q, acc.Instance, eval.HashJoin); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scanjoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.CQ(q, acc.Instance, eval.ScanJoin); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE2CQPScaling is the PTIME coverage check across query sizes.
func BenchmarkE2CQPScaling(b *testing.B) {
	s := workload.AccidentSchema()
	a := workload.AccidentConstraints()
	for _, n := range []int{2, 8, 32} {
		q := &cq.CQ{Label: fmt.Sprintf("chain%d", n), Free: []string{"a0"}}
		q.Atoms = append(q.Atoms, cq.NewAtom("Accident", cq.Var("a0"), cq.Var("d0"), cq.Var("t0")))
		q.Eqs = append(q.Eqs, cq.Eq{L: cq.Var("t0"), R: cq.Const(value.NewString("1/5/2005"))})
		for i := 1; i < n; i++ {
			q.Atoms = append(q.Atoms, cq.NewAtom("Casualty",
				cq.Var(fmt.Sprintf("c%d", i)), cq.Var("a0"),
				cq.Var(fmt.Sprintf("k%d", i)), cq.Var(fmt.Sprintf("v%d", i))))
		}
		b.Run(fmt.Sprintf("atoms=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cover.Check(q, a, s, cover.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3UCQCoverage is the Πᵖ₂ dominance check across tableau sizes.
func BenchmarkE3UCQCoverage(b *testing.B) {
	s := schema.MustNew(schema.MustRelation("Rp", "A", "B", "C"))
	ap := access.NewSchema(access.NewConstraint("Rp", attrs("A"), attrs("B"), 4))
	for _, n := range []int{3, 5} {
		q1 := &cq.CQ{Label: "Q1", Free: []string{"y"},
			Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
			Eqs:   []cq.Eq{{L: cq.Var("x"), R: cq.Const(value.NewInt(1))}}}
		q2 := &cq.CQ{Label: "Q2", Free: []string{"y"},
			Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
			Eqs: []cq.Eq{
				{L: cq.Var("x"), R: cq.Const(value.NewInt(1))},
				{L: cq.Var("z"), R: cq.Var("y")},
			}}
		for i := 3; i < n; i++ {
			q2.Atoms = append(q2.Atoms, cq.NewAtom("Rp",
				cq.Var("x"), cq.Var(fmt.Sprintf("w%d", i)), cq.Var(fmt.Sprintf("u%d", i))))
		}
		b.Run(fmt.Sprintf("vars=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cover.CheckUCQ([]*cq.CQ{q1, q2}, ap, s, cover.Options{
					AInstance: ainstance.Options{MaxVars: 12},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4WorkloadClassification is the coverage-rate measurement: how
// fast a 50-query workload is classified covered/bounded.
func BenchmarkE4WorkloadClassification(b *testing.B) {
	s := workload.AccidentSchema()
	a := workload.AccidentConstraints()
	consts := map[schema.Attribute][]cq.Term{
		"date": {cq.Const(value.NewString("1/5/2005"))},
		"aid":  {cq.Const(value.NewInt(3))},
		"vid":  {cq.Const(value.NewInt(5))},
	}
	qs, err := workload.RandomCQs(s, workload.RandomCQConfig{
		Queries: 50, MaxAtoms: 4, StartProb: 0.85, FreeVars: 2, Seed: 3,
	}, consts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := bep.Decide(q, a, s, bep.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE5SpeedupSweep runs the bounded plan across dataset scales: its
// per-op time must stay flat while the baselines (E1 benches) grow.
func BenchmarkE5SpeedupSweep(b *testing.B) {
	for _, days := range []int{10, 40, 160} {
		acc, eng := mustAccidents(b, days)
		q := workload.Q0()
		p, _, err := eng.Plan(q)
		if err != nil {
			b.Fatal(err)
		}
		ix, _, err := access.BuildIndexed(acc.Access, acc.Instance)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("D=%d", acc.Instance.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := plan.Execute(p, ix); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6GraphSearch is the personalized search against its baseline.
func BenchmarkE6GraphSearch(b *testing.B) {
	soc, err := workload.GenerateSocial(workload.SocialConfig{
		People: 5000, MaxFriends: 50, MaxLikes: 10, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.New(soc.Schema, soc.Access, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(soc.Instance); err != nil {
		b.Fatal(err)
	}
	q := workload.GraphSearchQuery(17, "NYC", "cycling")
	p, _, err := eng.Plan(q)
	if err != nil {
		b.Fatal(err)
	}
	ix, _, err := access.BuildIndexed(soc.Access, soc.Instance)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := plan.Execute(p, ix); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hashjoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.CQ(q, soc.Instance, eval.HashJoin); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7Envelopes times the UEP and LEP searches on Example 4.1.
func BenchmarkE7Envelopes(b *testing.B) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 3))
	q := &cq.CQ{
		Label: "Q41", Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("w"), cq.Var("x")),
			cq.NewAtom("R", cq.Var("y"), cq.Var("w")),
			cq.NewAtom("R", cq.Var("x"), cq.Var("z")),
		},
		Eqs: []cq.Eq{{L: cq.Var("w"), R: cq.Const(value.NewInt(1))}},
	}
	b.Run("UEP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			up, err := envelope.FindUpper(q, a, s, envelope.Options{})
			if err != nil || !up.Found {
				b.Fatal(err, up)
			}
		}
	})
	b.Run("LEP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo, err := envelope.FindLower(q, a, s, 1, envelope.Options{})
			if err != nil || !lo.Found {
				b.Fatal(err, lo)
			}
		}
	})
}

// BenchmarkE8QSP times exact vs greedy specialization on the MSC family.
func BenchmarkE8QSP(b *testing.B) {
	s := workload.AccidentSchema()
	a := workload.AccidentConstraints()
	q, params := workload.Q51()
	b.Run("Q51-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := specialize.Decide(q, a, s, params, 1, specialize.Options{})
			if err != nil || !res.Found {
				b.Fatal(err, res)
			}
		}
	})
	b.Run("Q51-greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := specialize.Decide(q, a, s, params, 2, specialize.Options{Greedy: true})
			if err != nil || !res.Found {
				b.Fatal(err, res)
			}
		}
	})
}

// BenchmarkE9GeneralConstraints runs the log-bounded fetch at scale.
func BenchmarkE9GeneralConstraints(b *testing.B) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.Constraint{
		Rel: "R", X: attrs("A"), Y: attrs("B"), Card: access.LogCard(),
	})
	d := data.NewInstance(s)
	n := 1 << 16
	lg := access.LogCard().Bound(n)
	for i := 0; i < lg; i++ {
		d.MustInsert("R", value.NewInt(1), value.NewInt(int64(100+i)))
	}
	for i := d.Size(); i < n; i++ {
		d.MustInsert("R", value.NewInt(int64(1000+i)), value.NewInt(int64(i)))
	}
	eng, err := core.New(s, a, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(d); err != nil {
		b.Fatal(err)
	}
	q := &cq.CQ{Label: "Qlog", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("c"), cq.Var("y"))},
		Eqs:   []cq.Eq{{L: cq.Var("c"), R: cq.Const(value.NewInt(1))}}}
	p, _, err := eng.Plan(q)
	if err != nil {
		b.Fatal(err)
	}
	ix, _, err := access.BuildIndexed(a, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := plan.Execute(p, ix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10BEPVerdicts times the BEP checker on the paper's examples.
func BenchmarkE10BEPVerdicts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E10PaperExamples(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- DESIGN.md §5 ablations -------------------------------------------

// BenchmarkAblationEqPlus compares the coverage fixpoint with the paper's
// eq⁺ closure against the eq-only ablation, on a query with many
// shared-constant equality chains (the Example 3.8 pattern, widened).
//
// Ablation finding (see EXPERIMENTS.md): in this implementation the two
// closures give the SAME verdicts (both report 100 %covered here, and a
// probe over 8000 random queries found zero differences), because
// condition (c)(a) and applicability treat constant variables as fetchable
// outright — which subsumes everything eq⁺ would add (eq⁺ only ever merges
// classes that are both constant-pinned). The closure choice is therefore
// a pure bookkeeping cost, measured here.
func BenchmarkAblationEqPlus(b *testing.B) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 2))
	// Q(u1..uk) :- R(x, y), x = 1, u_i = 1, u_i = v_i for i in 1..k.
	const k = 8
	q := &cq.CQ{Label: "eqchain",
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))},
		Eqs:   []cq.Eq{{L: cq.Var("x"), R: cq.Const(value.NewInt(1))}}}
	for i := 0; i < k; i++ {
		u := fmt.Sprintf("u%d", i)
		v := fmt.Sprintf("v%d", i)
		q.Free = append(q.Free, u)
		q.Eqs = append(q.Eqs,
			cq.Eq{L: cq.Var(u), R: cq.Const(value.NewInt(1))},
			cq.Eq{L: cq.Var(u), R: cq.Var(v)})
	}
	run := func(b *testing.B, opt cover.Options) {
		covered := 0
		for i := 0; i < b.N; i++ {
			res, err := cover.Check(q, a, s, opt)
			if err != nil {
				b.Fatal(err)
			}
			if res.Covered {
				covered = 100
			} else {
				covered = 0
			}
		}
		b.ReportMetric(float64(covered), "%covered")
	}
	b.Run("eqplus", func(b *testing.B) { run(b, cover.Options{}) })
	b.Run("eqonly", func(b *testing.B) { run(b, cover.Options{UseEqOnly: true}) })
}

// BenchmarkAblationFusedJoin compares natural-join plans with plans
// lowered to the paper's primitive ρ/×/σ/π grammar.
func BenchmarkAblationFusedJoin(b *testing.B) {
	acc, _ := mustAccidents(b, 40)
	ix, _, err := access.BuildIndexed(acc.Access, acc.Instance)
	if err != nil {
		b.Fatal(err)
	}
	res, err := cover.Check(workload.Q0(), acc.Access, acc.Schema, cover.Options{})
	if err != nil {
		b.Fatal(err)
	}
	natural, err := plan.Build(res, plan.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	lowered, err := plan.Build(res, plan.BuildOptions{LowerJoins: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := plan.Execute(natural, ix); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lowered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := plan.Execute(lowered, ix); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAnchoring sweeps the workload's anchored-query
// probability: coverage rates collapse as anchoring disappears, showing
// that personalized (anchored) workloads are what bounded evaluation wins.
func BenchmarkAblationAnchoring(b *testing.B) {
	s := workload.AccidentSchema()
	a := workload.AccidentConstraints()
	consts := map[schema.Attribute][]cq.Term{
		"date": {cq.Const(value.NewString("1/5/2005"))},
		"aid":  {cq.Const(value.NewInt(3))},
	}
	for _, prob := range []float64{0.0, 0.5, 1.0} {
		qs, err := workload.RandomCQs(s, workload.RandomCQConfig{
			Queries: 40, MaxAtoms: 3, StartProb: prob, FreeVars: 2, Seed: 4,
		}, consts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("anchor=%.1f", prob), func(b *testing.B) {
			covered := 0
			for i := 0; i < b.N; i++ {
				covered = 0
				for _, q := range qs {
					res, err := cover.Check(q, a, s, cover.Options{})
					if err != nil {
						b.Fatal(err)
					}
					if res.Covered {
						covered++
					}
				}
			}
			b.ReportMetric(float64(covered)/float64(len(qs))*100, "%covered")
		})
	}
}

// BenchmarkIndexBuild measures the one-time cost of building the access
// schema's indices (the preprocessing the paper assumes).
func BenchmarkIndexBuild(b *testing.B) {
	acc, _ := mustAccidents(b, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := access.BuildIndexed(acc.Access, acc.Instance); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanSynthesis measures end-to-end plan construction for Q0.
func BenchmarkPlanSynthesis(b *testing.B) {
	_, eng := mustAccidents(b, 5)
	q := workload.Q0()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Plan(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- PR 1: concurrent serving layer (plan cache + parallel executor) ---

// QDateFanout is Q0 without the district filter: all driver ages for one
// date. Its casualty fetch fans out over every accident of the day (up to
// 610 keys) — the shape the parallel executor partitions.
func qDateFanout() *cq.CQ {
	return &cq.CQ{
		Label: "Qdate", Free: []string{"xa"},
		Atoms: []cq.Atom{
			cq.NewAtom("Accident", cq.Var("aid"), cq.Var("d"), cq.Const(value.NewString("1/5/2005"))),
			cq.NewAtom("Casualty", cq.Var("cid"), cq.Var("aid"), cq.Var("class"), cq.Var("vid")),
			cq.NewAtom("Vehicle", cq.Var("vid"), cq.Var("dri"), cq.Var("xa")),
		},
	}
}

// BenchmarkPlanCache measures repeat-query planning: cold synthesis (cache
// disabled) vs cached lookup. The gap is the per-request win for every
// repeated query shape in a serving workload.
func BenchmarkPlanCache(b *testing.B) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 5, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	q := workload.Q0()
	b.Run("cold", func(b *testing.B) {
		eng, err := core.New(acc.Schema, acc.Access, core.Options{PlanCache: -1})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Load(acc.Instance); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Plan(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		eng, err := core.New(acc.Schema, acc.Access, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Load(acc.Instance); err != nil {
			b.Fatal(err)
		}
		if _, _, err := eng.Plan(q); err != nil { // prime
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Plan(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColdVsCachedExecute measures the end-to-end repeat-query path
// (plan + execute), cache off vs on — the serving-layer latency headline.
func BenchmarkColdVsCachedExecute(b *testing.B) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 20, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	q := workload.Q0()
	for _, cfg := range []struct {
		name  string
		cache int
	}{{"cold", -1}, {"cached", 0}} {
		eng, err := core.New(acc.Schema, acc.Access, core.Options{PlanCache: cfg.cache})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Load(acc.Instance); err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelFetchAccidents sweeps worker counts on the large
// accidents configuration (the full 610 accidents/day of ψ1): the
// multi-worker fetch fan-out vs the single-worker baseline.
func BenchmarkParallelFetchAccidents(b *testing.B) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 8, AccidentsPerDay: 610, MaxVehicles: 8, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.New(acc.Schema, acc.Access, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(acc.Instance); err != nil {
		b.Fatal(err)
	}
	p, _, err := eng.Plan(qDateFanout())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := plan.ExecOptions{Workers: w}
			for i := 0; i < b.N; i++ {
				if _, _, err := plan.ExecuteOpts(context.Background(), p, eng.Indexed(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelExecSocial sweeps worker counts on the 3-hop social
// walk, whose final fetch covers thousands of distinct keys.
func BenchmarkParallelExecSocial(b *testing.B) {
	soc, err := workload.GenerateSocial(workload.SocialConfig{
		People: 5000, MaxFriends: 50, MaxLikes: 10, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.New(soc.Schema, soc.Access, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(soc.Instance); err != nil {
		b.Fatal(err)
	}
	p, _, err := eng.Plan(bench.Path3Query(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := plan.ExecOptions{Workers: w}
			for i := 0; i < b.N; i++ {
				if _, _, err := plan.ExecuteOpts(context.Background(), p, eng.Indexed(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentServing drives one shared Engine from parallel
// goroutines (RunParallel), the deployment shape the concurrency
// guarantees exist for: cached plans, read-only indices, no locks on the
// hot path.
func BenchmarkConcurrentServing(b *testing.B) {
	acc, eng := mustAccidents(b, 20)
	_ = acc
	q := workload.Q0()
	if _, _, err := eng.Plan(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := eng.Query(context.Background(), q); err != nil {
				// b.Fatal must not run off the benchmark goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkConcurrentQueryCancel measures the serving layer under churn:
// many goroutines issue the fan-out-heavy social walk with tight
// deadlines, so a large fraction of requests is canceled mid-execution.
// What is measured is the full admit-execute-unwind path — the cost of a
// request that does NOT run to completion, which a serving system pays
// constantly under load shedding.
func BenchmarkConcurrentQueryCancel(b *testing.B) {
	soc, err := workload.GenerateSocial(workload.SocialConfig{
		People: 3000, MaxFriends: 50, MaxLikes: 10, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.New(soc.Schema, soc.Access, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(soc.Instance); err != nil {
		b.Fatal(err)
	}
	q := bench.Path3Query(1)
	if _, _, err := eng.Plan(q); err != nil { // prime the plan cache
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Microsecond)
			_, err := eng.Query(ctx, q, core.WithWorkers(2))
			cancel()
			if err != nil && !errors.Is(err, context.DeadlineExceeded) {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkApplyVsLoad is the live-update acceptance benchmark: ingesting
// a small accidents delta incrementally (Engine.Apply, copy-on-write +
// incremental index maintenance) against the stop-the-world alternative
// (rebuild every index with Engine.Load). On small deltas Apply must win,
// and the gap grows with |D|.
func BenchmarkApplyVsLoad(b *testing.B) {
	for _, days := range []int{20, 80} {
		mkStream := func(b *testing.B, acc *workload.Accidents) *workload.AccidentStream {
			st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
				InsertAccidents: 5, DeleteAccidents: 2, Seed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			return st
		}
		b.Run(fmt.Sprintf("apply/days=%d", days), func(b *testing.B) {
			acc, eng := mustAccidents(b, days)
			st := mkStream(b, acc)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Apply(context.Background(), st.Next()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("loadRebuild/days=%d", days), func(b *testing.B) {
			acc, eng := mustAccidents(b, days)
			st := mkStream(b, acc)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The pre-live alternative: materialize the updated
				// instance, then rebuild and re-validate every index.
				res, err := live.Apply(context.Background(), st.Next(), eng.Indexed())
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Load(res.Instance); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryUnderUpdateStream serves Q0 while a background goroutine
// applies update batches back-to-back: snapshot isolation means the
// writer never blocks readers, so per-query latency should stay the same
// order as the idle-writer BenchmarkColdVsCachedExecute numbers.
func BenchmarkQueryUnderUpdateStream(b *testing.B) {
	acc, eng := mustAccidents(b, 40)
	st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
		InsertAccidents: 5, DeleteAccidents: 2, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	q := workload.Q0()
	if _, err := eng.Query(context.Background(), q, core.WithFallback(core.FallbackRefuse)); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
				if _, err := eng.Apply(context.Background(), st.Next()); err != nil {
					done <- err
					return
				}
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(context.Background(), q, core.WithFallback(core.FallbackRefuse)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}
