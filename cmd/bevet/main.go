// Command bevet runs the engine-invariant analyzers in
// internal/analysis over this module's packages. It speaks the `go vet
// -vettool` unit-checker protocol, so the usual way to run it is:
//
//	go build -o /tmp/bevet ./cmd/bevet
//	go vet -vettool=/tmp/bevet ./...
//
// which analyzes every package — test files and test variants included
// — with full type information and build caching. Invoked with package
// patterns instead of a vet config, it loads the packages itself
// through `go list -export` (non-test files only) as a quick
// standalone check:
//
//	bevet ./...
//
// The protocol, mirroring x/tools' unitchecker:
//
//	-V=full   print an identity line ending in buildID=<hex> so the
//	          go command can cache runs against this binary
//	-flags    print the supported analyzer flags as JSON (none)
//	foo.cfg   analyze the one compilation unit the go command
//	          described in the JSON config file
//
// Diagnostics go to stderr as file:line:col: message; the exit status
// is 1 if anything was reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bevet: ")
	vFlag := flag.String("V", "", "print version information (go vet protocol; only -V=full is supported)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	flag.Parse()

	if *vFlag != "" {
		printVersion(*vFlag)
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args))
}

// printVersion implements -V=full: the go command hashes this line to
// decide whether cached vet results are still valid for this binary.
func printVersion(v string) {
	if v != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", v)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

// vetConfig is the JSON compilation-unit description the go command
// writes to <objdir>/vet.cfg for each package.
type vetConfig struct {
	ID                        string            // e.g. "repro/internal/core [repro/internal/core.test]"
	Compiler                  string            // "gc"
	Dir                       string            // package directory
	ImportPath                string            // package path as the build sees it
	GoVersion                 string            // minimum go version, e.g. "go1.24.0"
	GoFiles                   []string          // absolute paths of the unit's Go files
	ImportMap                 map[string]string // import path -> package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool   // package path -> is standard library
	PackageVetx               map[string]string // package path -> facts file (unused: no facts)
	VetxOnly                  bool              // only compute facts, report nothing
	VetxOutput                string            // where to write this unit's facts
	SucceedOnTypecheckFailure bool              // the compiler will report the errors; stay quiet
}

// runUnit analyzes the single compilation unit described by cfgFile and
// returns the process exit code.
func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgFile, err)
	}

	// bevet has no cross-package facts; write an empty facts file
	// unconditionally so the go command can cache that.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Resolve an import path as written in source to the export data
	// file the build produced: through ImportMap first (vendoring, test
	// variants), then PackageFile. "unsafe" never reaches the resolver —
	// the gc importer special-cases it.
	resolve := func(importPath string) string {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		return cfg.PackageFile[path]
	}

	fset := token.NewFileSet()
	files, pkg, info, err := analysis.TypeCheck(fset, cfg.ImportPath, cfg.GoFiles, resolve)
	if err != nil {
		// Parse errors: the compiler will report them; stay quiet if the
		// go command asked us to.
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(fset, files, pkg, cfg.ImportPath, info)
	if err != nil {
		log.Fatal(err)
	}
	exit := 0
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		exit = 1
	}
	return exit
}

// runStandalone loads the named package patterns with `go list -export`
// and analyzes each (non-test files only; run under `go vet -vettool`
// to cover test variants too).
func runStandalone(patterns []string) int {
	pkgs, err := analysis.ListExports(".", patterns)
	if err != nil {
		log.Fatal(err)
	}
	resolve := func(path string) string {
		if p := pkgs[path]; p != nil {
			return p.Export
		}
		return ""
	}
	var targets []*analysis.ListPackage
	for _, p := range pkgs {
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	exit := 0
	fset := token.NewFileSet()
	for _, p := range targets {
		files := make([]string, len(p.GoFiles))
		for i, name := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, name)
		}
		parsed, tpkg, info, err := analysis.TypeCheck(fset, p.ImportPath, files, resolve)
		if err != nil {
			log.Fatal(err)
		}
		diags, err := analysis.RunAnalyzers(fset, parsed, tpkg, p.ImportPath, info)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 1
		}
	}
	return exit
}
