package main

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/durable"
	"repro/internal/load"
	"repro/internal/workload"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./cmd/bequery -run Golden -update
//
// CLI output changes are deliberate: re-record and review the diff.
var update = flag.Bool("update", false, "rewrite golden files")

// durations is the only nondeterministic fragment of the human output.
var durations = regexp.MustCompile(`in [0-9]+(\.[0-9]+)?(ns|µs|ms|m|s)+`)

func normalize(s string) string { return durations.ReplaceAllString(s, "in <dur>") }

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (record with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("output differs from %s (re-record with -update if deliberate):\n--- want ---\n%s--- got ---\n%s", path, want, got)
	}
}

// goldenData saves a deterministic accidents instance as TSV, matching
// the testdata/accidents.bq document schema.
func goldenData(t *testing.T) string {
	t.Helper()
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 3, AccidentsPerDay: 25, MaxVehicles: 3, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := load.SaveInstance(acc.Instance, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestGoldenRunHuman pins the human-readable run output (plan header,
// stats line, row table) on the accidents document, for the unsharded
// engine and — byte-identically — for 4 shards.
func TestGoldenRunHuman(t *testing.T) {
	dir := goldenData(t)
	doc := filepath.Join("testdata", "accidents.bq")
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"run_human.golden", 1},
		{"run_human.golden", 4}, // same golden file: sharding must not change output
	} {
		out := captureStdout(t, func() error {
			return run(cfg(func(c *cliConfig) {
				c.file = doc
				c.dataDir = dir
				c.query = "Q0"
				c.mode = "run"
				c.shards = tc.shards
			}))
		})
		checkGolden(t, tc.name, normalize(out))
	}
}

// TestGoldenRunStream pins the -stream NDJSON output: one JSON object
// per row, plan order, no summary on stdout.
func TestGoldenRunStream(t *testing.T) {
	dir := goldenData(t)
	doc := filepath.Join("testdata", "accidents.bq")
	for _, shards := range []int{1, 4} {
		out := captureStdout(t, func() error {
			return run(cfg(func(c *cliConfig) {
				c.file = doc
				c.dataDir = dir
				c.query = "Q0"
				c.mode = "run"
				c.stream = true
				c.shards = shards
			}))
		})
		checkGolden(t, "run_stream.golden", out)
	}
}

// TestGoldenWALDump pins the -wal-dump rendering over a deterministic
// three-record log with a torn tail — the exact artifact a crash
// mid-append leaves behind, and the reason the tool exists. The trailing
// garbage must render as a diagnostic line, not an error.
func TestGoldenWALDump(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 2, AccidentsPerDay: 10, MaxVehicles: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
		InsertAccidents: 3, DeleteAccidents: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, err := durable.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 3; v++ {
		if err := s.AppendDelta(v, st.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write([]byte{9, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return run(cfg(func(c *cliConfig) {
			c.file = filepath.Join("testdata", "accidents.bq")
			c.walDump = dir
		}))
	})
	checkGolden(t, "wal_dump.golden", out)
}

// TestGoldenExplain pins the explain report (coverage diagnostics, BEP
// verdict, plan, bound) — fully deterministic, no normalization.
func TestGoldenExplain(t *testing.T) {
	dir := goldenData(t)
	doc := filepath.Join("testdata", "accidents.bq")
	out := captureStdout(t, func() error {
		return run(cfg(func(c *cliConfig) {
			c.file = doc
			c.dataDir = dir
			c.query = "Q0"
			c.mode = "explain"
		}))
	})
	checkGolden(t, "explain.golden", out)
}
