// Command bequery is the interactive front end to the bounded-evaluation
// engine: it parses a document declaring a relational schema, an access
// schema, and queries, then checks/plans/explains/runs them.
//
// Usage:
//
//	bequery -file doc.bq [-data dir] -query Q0 [-mode explain|check|plan|run|specialize]
//	bequery -demo accidents -query Q0 -mode run [-save dir]
//	bequery -demo accidents -query Q0 -mode run -budget 100 -timeout 2s -fallback refuse
//
// The run mode serves queries through the unified Engine.Query API:
// -budget refuses a query before execution when its static access bound
// exceeds the budget (admission control), -timeout bounds the request
// wall-clock, -fallback picks the strategy for queries that are not
// boundedly evaluable (scan | refuse | envelope), and -workers sizes the
// per-request execution pool.
//
// With -demo, a built-in workload (accidents | social) supplies schema,
// constraints, data and the named query, so no file is needed. With -data,
// a directory of <Relation>.tsv files (see internal/load) provides the
// instance for a -file document; -save exports the demo instance in the
// same format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/load"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/workload"
)

func main() {
	var (
		file     = flag.String("file", "", "input document (relations, constraints, queries)")
		dataDir  = flag.String("data", "", "directory of <Relation>.tsv files to load with -file")
		saveDir  = flag.String("save", "", "export the loaded instance as TSV into this directory")
		demo     = flag.String("demo", "", "built-in workload: accidents | social")
		query    = flag.String("query", "", "query name to operate on")
		mode     = flag.String("mode", "explain", "explain | check | plan | run | baseline | specialize")
		k        = flag.Int("k", 2, "parameter budget for specialize")
		days     = flag.Int("days", 20, "accidents demo: days of data")
		people   = flag.Int("people", 2000, "social demo: people")
		workers  = flag.Int("workers", 1, "worker goroutines for plan execution (-1 = GOMAXPROCS)")
		budget   = flag.Int64("budget", -1, "run: refuse unless the static access bound is ≤ this many tuples (-1 = no budget)")
		timeout  = flag.Duration("timeout", 0, "run: per-request execution deadline (0 = none)")
		fallback = flag.String("fallback", "scan", "run: strategy for non-bounded queries: scan | refuse | envelope")
	)
	flag.Parse()
	if err := run(*file, *dataDir, *saveDir, *demo, *query, *mode, *k, *days, *people, *workers, *budget, *timeout, *fallback); err != nil {
		fmt.Fprintln(os.Stderr, "bequery:", err)
		os.Exit(1)
	}
}

func run(file, dataDir, saveDir, demo, query, mode string, k, days, people, workers int, budget int64, timeout time.Duration, fallback string) error {
	eng, queries, params, err := setup(file, demo, days, people, workers)
	if err != nil {
		return err
	}
	if dataDir != "" {
		d, err := load.LoadInstance(eng.Schema, dataDir)
		if err != nil {
			return err
		}
		if err := eng.Load(d); err != nil {
			return err
		}
	}
	if saveDir != "" {
		if eng.Instance() == nil {
			return fmt.Errorf("-save needs an instance (use -demo or -data)")
		}
		if err := load.SaveInstance(eng.Instance(), saveDir); err != nil {
			return err
		}
		fmt.Printf("saved %d tuples to %s\n", eng.Instance().Size(), saveDir)
	}
	if query == "" {
		fmt.Println("available queries:")
		for _, name := range queryNames(queries) {
			fmt.Println("  " + name)
		}
		return nil
	}
	q, ok := queries[query]
	if !ok {
		return fmt.Errorf("no query named %q", query)
	}
	switch mode {
	case "explain":
		out, err := eng.Explain(q, params[query])
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "check":
		res, err := eng.IsCovered(q)
		if err != nil {
			return err
		}
		fmt.Print(res.Explain())
	case "plan":
		p, b, err := eng.Plan(q)
		if err != nil {
			return err
		}
		fmt.Println(p)
		fmt.Println(b)
	case "run":
		opts, err := queryOptions(workers, budget, timeout, fallback)
		if err != nil {
			return err
		}
		res, err := eng.Query(context.Background(), q, opts...)
		var be *core.BudgetError
		if errors.As(err, &be) {
			// Admission control working as intended: report the refusal
			// without touching any data.
			fmt.Println("refused:", be)
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Printf("answered via %s; fetched=%d scanned=%d rows=%d cached=%v in %v\n",
			res.Mode, res.Stats.Fetched, res.Stats.Scanned, len(res.Rows),
			res.Stats.CacheHit, res.Stats.Elapsed.Round(time.Microsecond))
		fmt.Println("  # " + strings.Join(res.Columns, "\t"))
		n := 0
		for row := range res.Seq() {
			if n == 20 {
				fmt.Printf("... %d more\n", len(res.Rows)-20)
				break
			}
			n++
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = v.String()
			}
			fmt.Println("  " + strings.Join(cells, "\t"))
		}
	case "baseline":
		res, err := eng.Baseline(q, eval.HashJoin)
		if err != nil {
			return err
		}
		fmt.Printf("baseline (hash-join): scanned=%d rows=%d\n", res.Scanned, len(res.Rows))
	case "specialize":
		ps := params[query]
		if len(ps) == 0 {
			return fmt.Errorf("query %s declares no parameters (use params(...) in the document)", query)
		}
		res, err := eng.Specialize(q, ps, k)
		if err != nil {
			return err
		}
		if !res.Found {
			fmt.Println("not specializable:", res.Reason)
			return nil
		}
		fmt.Printf("specializable with %v (minimum=%v, %d subsets tried)\n", res.Params, res.Minimum, res.Tried)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

// queryOptions assembles the per-request QueryOptions from the CLI flags.
func queryOptions(workers int, budget int64, timeout time.Duration, fallback string) ([]core.QueryOption, error) {
	opts := []core.QueryOption{core.WithWorkers(workers)}
	if budget >= 0 {
		opts = append(opts, core.WithAccessBudget(budget))
	}
	if timeout > 0 {
		opts = append(opts, core.WithDeadline(time.Now().Add(timeout)))
	}
	switch fallback {
	case "scan":
		opts = append(opts, core.WithFallback(core.FallbackScan))
	case "refuse":
		opts = append(opts, core.WithFallback(core.FallbackRefuse))
	case "envelope":
		opts = append(opts, core.WithFallback(core.FallbackEnvelope))
	default:
		return nil, fmt.Errorf("unknown fallback %q (want scan | refuse | envelope)", fallback)
	}
	return opts, nil
}

// queryNames returns the query names in sorted order, so listings are
// deterministic across runs (map iteration order is not).
func queryNames(queries map[string]*cq.CQ) []string {
	names := make([]string, 0, len(queries))
	for name := range queries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func setup(file, demo string, days, people, workers int) (*core.Engine, map[string]*cq.CQ, map[string][]string, error) {
	queries := map[string]*cq.CQ{}
	params := map[string][]string{}
	opts := core.Options{Exec: plan.ExecOptions{Workers: workers}}
	switch {
	case file != "":
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, nil, nil, err
		}
		doc, err := parser.Parse(string(raw))
		if err != nil {
			return nil, nil, nil, err
		}
		eng, err := core.New(doc.Schema, doc.Access, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, q := range doc.Queries {
			if !q.IsCQ() {
				continue // the CLI operates on CQ rules; UCQs via the API
			}
			queries[q.Name] = q.Subs[0]
			params[q.Name] = q.Params
		}
		return eng, queries, params, nil
	case demo == "accidents":
		acc, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: days, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		eng, err := core.New(acc.Schema, acc.Access, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := eng.Load(acc.Instance); err != nil {
			return nil, nil, nil, err
		}
		queries["Q0"] = workload.Q0()
		q51, ps := workload.Q51()
		queries["Q51"] = q51
		params["Q51"] = ps
		return eng, queries, params, nil
	case demo == "social":
		soc, err := workload.GenerateSocial(workload.SocialConfig{
			People: people, MaxFriends: 50, MaxLikes: 10, Seed: 2,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		eng, err := core.New(soc.Schema, soc.Access, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := eng.Load(soc.Instance); err != nil {
			return nil, nil, nil, err
		}
		queries["GraphSearch"] = workload.GraphSearchQuery(1, "NYC", "cycling")
		for _, q := range workload.PatternQueries(1) {
			queries[q.Label] = q
		}
		return eng, queries, params, nil
	default:
		return nil, nil, nil, fmt.Errorf("provide -file or -demo accidents|social")
	}
}
