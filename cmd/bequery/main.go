// Command bequery is the interactive front end to the bounded-evaluation
// engine: it parses a document declaring a relational schema, an access
// schema, and queries, then checks/plans/explains/runs them.
//
// Usage:
//
//	bequery -file doc.bq [-data dir] -query Q0 [-mode explain|check|plan|run|specialize]
//	bequery -demo accidents -query Q0 -mode run [-save dir]
//	bequery -demo accidents -query Q0 -mode run -budget 100 -timeout 2s -fallback refuse
//	bequery -demo accidents -apply delta.tsv -query Q0 -mode run -stream
//	bequery -demo accidents -data-dir /var/lib/beserve -query Q0 -mode run
//	bequery -demo accidents -wal-dump /var/lib/beserve
//
// The run mode serves queries through the unified Engine.Query API:
// -budget refuses a query before execution when its static access bound
// exceeds the budget (admission control), -timeout bounds the request
// wall-clock, -fallback picks the strategy for queries that are not
// boundedly evaluable (scan | refuse | envelope), -workers sizes the
// per-request execution pool, and -stream switches the output to NDJSON,
// one row object per line as the engine produces it (core.WithStream).
//
// -apply ingests a delta TSV (one op per line: "+|-<TAB>Relation<TAB>
// values...", see internal/live) through Engine.Apply before the query
// runs: indices are maintained incrementally under snapshot isolation,
// and a batch that would violate the access schema is rejected with the
// violation list.
//
// -shards K hash-partitions the loaded data across K in-process shards
// (internal/shard): indexed fetches aligned with a relation's partition
// key route to one shard, everything else scatters and merges, and both
// results and update verdicts are identical to the unsharded engine's.
//
// -data-dir attaches a durability directory (internal/durable, the same
// layout beserve writes): a directory already holding state is recovered
// — checkpoint plus WAL replay — and the initial -demo/-data load is
// skipped, so bequery can query exactly what a crashed server had
// committed; -apply batches are WAL-logged before they become visible.
//
// -profile traces the request and prints an EXPLAIN ANALYZE span tree —
// one {"profile": ...} JSON line after the answer (the stream's last
// line with -stream, the same wire shape beserve's "profile": true
// speaks) — covering planning, every index fetch, joins, dedup, and the
// per-shard route/scatter traffic under -shards. With -apply it also
// profiles the update (stage/validate/commit, WAL append). -slow-query-ms
// N logs a structured JSON line to stderr when the request exceeds N ms.
//
// -wal-dump renders a durability directory's write-ahead log human-
// readably (one header line per record plus the delta TSV body) and
// exits; the schema still comes from -file or -demo. A torn tail — the
// signature of a crash mid-append — is reported, not an error.
//
// With -demo, a built-in workload (accidents | social) supplies schema,
// constraints, data and the named query, so no file is needed. With -data,
// a directory of <Relation>.tsv files (see internal/load) provides the
// instance for a -file document; -save exports the demo instance in the
// same format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/durable"
	"repro/internal/eval"
	"repro/internal/live"
	"repro/internal/load"
	"repro/internal/ndjson"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/workload"
)

// durableEngine is the durability surface shared by core.Engine and
// shard.Engine; discovered by assertion so core.Queryable stays a pure
// serving interface (mirrors cmd/beserve).
type durableEngine interface {
	Durable(ctx context.Context, dir string, hook durable.Hook) (bool, error)
	Checkpoint(ctx context.Context) (uint64, error)
	CloseDurable() error
}

// cliConfig collects every flag; one value per invocation.
type cliConfig struct {
	file       string
	dataDir    string
	durableDir string
	walDump    string
	saveDir    string
	demo       string
	apply      string
	query      string
	mode       string
	k          int
	days       int
	people     int
	workers    int
	shards     int
	budget     int64
	timeout    time.Duration
	fallback   string
	stream     bool
	profile    bool
	slowMS     int
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.file, "file", "", "input document (relations, constraints, queries)")
	flag.StringVar(&cfg.dataDir, "data", "", "directory of <Relation>.tsv files to load with -file")
	flag.StringVar(&cfg.durableDir, "data-dir", "", "durability directory (WAL + checkpoints); existing state is recovered and the initial load skipped")
	flag.StringVar(&cfg.walDump, "wal-dump", "", "render the WAL in this durability directory and exit (schema from -file or -demo)")
	flag.StringVar(&cfg.saveDir, "save", "", "export the loaded instance as TSV into this directory")
	flag.StringVar(&cfg.demo, "demo", "", "built-in workload: accidents | social")
	flag.StringVar(&cfg.apply, "apply", "", "delta TSV file to apply through Engine.Apply before operating")
	flag.StringVar(&cfg.query, "query", "", "query name to operate on")
	flag.StringVar(&cfg.mode, "mode", "explain", "explain | check | plan | run | baseline | specialize")
	flag.IntVar(&cfg.k, "k", 2, "parameter budget for specialize")
	flag.IntVar(&cfg.days, "days", 20, "accidents demo: days of data")
	flag.IntVar(&cfg.people, "people", 2000, "social demo: people")
	flag.IntVar(&cfg.workers, "workers", 1, "worker goroutines for plan execution (-1 = GOMAXPROCS)")
	flag.IntVar(&cfg.shards, "shards", 1, "hash-partition the data across K shards (internal/shard)")
	flag.Int64Var(&cfg.budget, "budget", -1, "run: refuse unless the static access bound is ≤ this many tuples (-1 = no budget)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "run: per-request execution deadline (0 = none)")
	flag.StringVar(&cfg.fallback, "fallback", "scan", "run: strategy for non-bounded queries: scan | refuse | envelope")
	flag.BoolVar(&cfg.stream, "stream", false, "run: stream rows as NDJSON while the plan produces them")
	flag.BoolVar(&cfg.profile, "profile", false, "run: print an EXPLAIN ANALYZE span tree ({\"profile\": ...}) after the answer")
	flag.IntVar(&cfg.slowMS, "slow-query-ms", 0, "run: log a structured slow-query line to stderr when the request exceeds this many milliseconds (0 = off)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bequery:", err)
		os.Exit(1)
	}
}

func run(cfg cliConfig) error {
	if cfg.walDump != "" {
		// Inspection only: the document/demo supplies the schema the WAL
		// records are decoded under; no engine state (and no durable
		// attach) is needed, so skip -data-dir for the schema-only setup.
		schemaOnly := cfg
		schemaOnly.durableDir = ""
		_, sch, _, _, _, err := setup(schemaOnly)
		if err != nil {
			return err
		}
		return durable.DumpWAL(os.Stdout, cfg.walDump, sch)
	}
	eng, sch, queries, params, restored, err := setup(cfg)
	if err != nil {
		return err
	}
	if de, ok := eng.(durableEngine); ok && cfg.durableDir != "" {
		defer de.CloseDurable()
	}
	if restored {
		fmt.Printf("recovered committed state from %s (version %d, |D| %d)\n",
			cfg.durableDir, eng.Stats().Version, eng.Stats().Size)
	}
	if cfg.dataDir != "" && !restored {
		d, err := load.LoadInstance(sch, cfg.dataDir)
		if err != nil {
			return err
		}
		if err := eng.Load(d); err != nil {
			return err
		}
	}
	if cfg.apply != "" {
		if eng.Instance() == nil {
			return fmt.Errorf("-apply needs an instance (use -demo or -data)")
		}
		delta, err := live.LoadDelta(cfg.apply, sch)
		if err != nil {
			return err
		}
		// -profile traces the apply too: stage/validate/commit and the
		// WAL append get their own span tree, printed before the query's.
		actx := context.Background()
		var atr *obs.Trace
		if cfg.profile {
			atr = obs.NewTrace("apply")
			actx = obs.NewContext(actx, atr)
		}
		res, err := eng.Apply(actx, delta)
		aroot := atr.Finish()
		if err != nil {
			return err
		}
		// Stats().Size reads the snapshot header; Instance().Size() on a
		// sharded engine would materialize the whole union just to count.
		fmt.Printf("applied %s: +%d -%d tuples, |D| now %d\n",
			cfg.apply, res.Inserted, res.Deleted, eng.Stats().Size)
		if err := ndjson.WriteProfile(os.Stdout, aroot, nil); err != nil {
			return err
		}
	}
	if cfg.saveDir != "" {
		if eng.Instance() == nil {
			return fmt.Errorf("-save needs an instance (use -demo or -data)")
		}
		if err := load.SaveInstance(eng.Instance(), cfg.saveDir); err != nil {
			return err
		}
		fmt.Printf("saved %d tuples to %s\n", eng.Instance().Size(), cfg.saveDir)
	}
	if cfg.query == "" {
		fmt.Println("available queries:")
		for _, name := range queryNames(queries) {
			fmt.Println("  " + name)
		}
		return nil
	}
	q, ok := queries[cfg.query]
	if !ok {
		return fmt.Errorf("no query named %q", cfg.query)
	}
	switch cfg.mode {
	case "explain":
		out, err := eng.Explain(q, params[cfg.query])
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "check":
		res, err := eng.IsCovered(q)
		if err != nil {
			return err
		}
		fmt.Print(res.Explain())
	case "plan":
		p, b, err := eng.Plan(q)
		if err != nil {
			return err
		}
		fmt.Println(p)
		fmt.Println(b)
	case "run":
		opts, err := queryOptions(cfg)
		if err != nil {
			return err
		}
		// A trace rides the request when -profile or -slow-query-ms asks
		// for one; otherwise the engine's record sites stay on their
		// zero-cost disabled path.
		slow := obs.NewSlowLog(os.Stderr, time.Duration(cfg.slowMS)*time.Millisecond)
		ctx := context.Background()
		var tr *obs.Trace
		if cfg.profile || slow.Enabled() {
			tr = obs.NewTrace("query")
			ctx = obs.NewContext(ctx, tr)
		}
		res, err := eng.Query(ctx, q, opts...)
		var be *core.BudgetError
		if errors.As(err, &be) {
			// Admission control working as intended: report the refusal
			// without touching any data.
			fmt.Println("refused:", be)
			return nil
		}
		if err != nil {
			return err
		}
		if cfg.stream {
			// NDJSON: one row object per line on stdout as the engine
			// produces it; the summary goes to stderr so pipelines stay
			// machine-readable. The profile trailer is the stream's last
			// line — the same wire shape the server speaks.
			if err := streamNDJSON(os.Stdout, res); err != nil {
				return err
			}
			root := tr.Finish()
			if cfg.profile {
				if err := ndjson.WriteProfile(os.Stdout, root, nil); err != nil {
					return err
				}
			}
			recordSlow(slow, cfg.query, q, res, root)
			fmt.Fprintf(os.Stderr, "answered via %s; fetched=%d scanned=%d cached=%v in %v\n",
				res.Mode, res.Stats.Fetched, res.Stats.Scanned,
				res.Stats.CacheHit, res.Stats.Elapsed.Round(time.Microsecond))
			return nil
		}
		root := tr.Finish()
		fmt.Printf("answered via %s; fetched=%d scanned=%d rows=%d cached=%v in %v\n",
			res.Mode, res.Stats.Fetched, res.Stats.Scanned, len(res.Rows),
			res.Stats.CacheHit, res.Stats.Elapsed.Round(time.Microsecond))
		fmt.Println("  # " + strings.Join(res.Columns, "\t"))
		n := 0
		for row := range res.Seq() {
			if n == 20 {
				fmt.Printf("... %d more\n", len(res.Rows)-20)
				break
			}
			n++
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = v.String()
			}
			fmt.Println("  " + strings.Join(cells, "\t"))
		}
		if cfg.profile {
			if err := ndjson.WriteProfile(os.Stdout, root, nil); err != nil {
				return err
			}
		}
		recordSlow(slow, cfg.query, q, res, root)
	case "baseline":
		res, err := eng.Baseline(q, eval.HashJoin)
		if err != nil {
			return err
		}
		fmt.Printf("baseline (hash-join): scanned=%d rows=%d\n", res.Scanned, len(res.Rows))
	case "specialize":
		ps := params[cfg.query]
		if len(ps) == 0 {
			return fmt.Errorf("query %s declares no parameters (use params(...) in the document)", cfg.query)
		}
		res, err := eng.Specialize(q, ps, cfg.k)
		if err != nil {
			return err
		}
		if !res.Found {
			fmt.Println("not specializable:", res.Reason)
			return nil
		}
		fmt.Printf("specializable with %v (minimum=%v, %d subsets tried)\n", res.Params, res.Minimum, res.Tried)
	default:
		return fmt.Errorf("unknown mode %q", cfg.mode)
	}
	return nil
}

// recordSlow feeds one finished request into the slow-query log (a nil
// log makes it a no-op): the same line schema beserve emits, so one jq
// recipe reads both.
func recordSlow(slow *obs.SlowLog, name string, q core.Query, res *core.Result, root *obs.Span) {
	if !slow.Enabled() {
		return
	}
	entry := obs.SlowEntry{
		Query:     name,
		Mode:      res.Mode.String(),
		Fetched:   res.Stats.Fetched,
		Scanned:   res.Stats.Scanned,
		FetchKeys: res.Stats.FetchKeys,
		CacheHit:  res.Stats.CacheHit,
	}
	if ck, ok := q.(interface{ CanonicalKey() string }); ok {
		entry.CacheKey = ck.CanonicalKey()
	}
	if res.Bound != nil {
		entry.Bound = res.Bound.Fetched
	}
	slow.Record(entry, res.Stats.Elapsed, root)
}

// streamNDJSON drains a streamed Result through the shared NDJSON
// encoder (the same one internal/server speaks on the wire). The
// returned error includes a stream cut short by the -timeout deadline —
// run propagates it to the exit code, so a truncated NDJSON pipeline
// never reads as a complete answer.
func streamNDJSON(w io.Writer, res *core.Result) error {
	return ndjson.Write(w, res, nil)
}

// queryOptions assembles the per-request QueryOptions from the CLI flags.
func queryOptions(cfg cliConfig) ([]core.QueryOption, error) {
	opts := []core.QueryOption{core.WithWorkers(cfg.workers)}
	if cfg.budget >= 0 {
		opts = append(opts, core.WithAccessBudget(cfg.budget))
	}
	if cfg.timeout > 0 {
		opts = append(opts, core.WithDeadline(time.Now().Add(cfg.timeout)))
	}
	if cfg.stream {
		opts = append(opts, core.WithStream())
	}
	switch cfg.fallback {
	case "scan":
		opts = append(opts, core.WithFallback(core.FallbackScan))
	case "refuse":
		opts = append(opts, core.WithFallback(core.FallbackRefuse))
	case "envelope":
		opts = append(opts, core.WithFallback(core.FallbackEnvelope))
	default:
		return nil, fmt.Errorf("unknown fallback %q (want scan | refuse | envelope)", cfg.fallback)
	}
	return opts, nil
}

// queryNames returns the query names in sorted order, so listings are
// deterministic across runs (map iteration order is not).
func queryNames(queries map[string]*cq.CQ) []string {
	names := make([]string, 0, len(queries))
	for name := range queries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// attachDurable wires -data-dir into the engine: recovery if the
// directory holds state, otherwise just the WAL/checkpoint plumbing for
// -apply batches to come. restored=true means the engine is already
// serving the recovered snapshot and the caller must skip its load.
func attachDurable(eng core.Queryable, dir string) (bool, error) {
	if dir == "" {
		return false, nil
	}
	de, ok := eng.(durableEngine)
	if !ok {
		return false, fmt.Errorf("engine does not support -data-dir")
	}
	return de.Durable(context.Background(), dir, nil)
}

func setup(cfg cliConfig) (core.Queryable, *schema.Schema, map[string]*cq.CQ, map[string][]string, bool, error) {
	opts := core.Options{Exec: plan.ExecOptions{Workers: cfg.workers}}
	switch {
	case cfg.file != "":
		raw, err := os.ReadFile(cfg.file)
		if err != nil {
			return nil, nil, nil, nil, false, err
		}
		doc, err := parser.Parse(string(raw))
		if err != nil {
			return nil, nil, nil, nil, false, err
		}
		eng, err := shard.NewOrCore(doc.Schema, doc.Access, opts, cfg.shards)
		if err != nil {
			return nil, nil, nil, nil, false, err
		}
		restored, err := attachDurable(eng, cfg.durableDir)
		if err != nil {
			return nil, nil, nil, nil, false, err
		}
		// The CLI operates on the document's CQ rules, exactly the
		// catalog beserve serves for the same document; UCQs go through
		// the API (or the server's ad-hoc "text").
		cat := server.CatalogFromDocument(doc)
		return eng, doc.Schema, cat.Queries, cat.Params, restored, nil
	case cfg.demo == "accidents", cfg.demo == "social":
		var dm *workload.Demo
		var err error
		if cfg.demo == "accidents" {
			dm, err = workload.AccidentsDemo(cfg.days)
		} else {
			dm, err = workload.SocialDemo(cfg.people)
		}
		if err != nil {
			return nil, nil, nil, nil, false, err
		}
		eng, err := shard.NewOrCore(dm.Schema, dm.Access, opts, cfg.shards)
		if err != nil {
			return nil, nil, nil, nil, false, err
		}
		restored, err := attachDurable(eng, cfg.durableDir)
		if err != nil {
			return nil, nil, nil, nil, false, err
		}
		if !restored {
			if err := eng.Load(dm.Instance); err != nil {
				return nil, nil, nil, nil, false, err
			}
		}
		return eng, dm.Schema, dm.Queries, dm.Params, restored, nil
	default:
		return nil, nil, nil, nil, false, fmt.Errorf("provide -file or -demo accidents|social")
	}
}
