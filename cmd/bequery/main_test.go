package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/workload"
)

// cfg builds a cliConfig with the test defaults, tweaked by fn.
func cfg(fn func(*cliConfig)) cliConfig {
	c := cliConfig{mode: "explain", k: 1, workers: 1, budget: -1, fallback: "scan"}
	if fn != nil {
		fn(&c)
	}
	return c
}

func TestSetupFromDocument(t *testing.T) {
	eng, _, queries, params, _, err := setup(cfg(func(c *cliConfig) { c.file = filepath.Join("testdata", "accidents.bq") }))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := queries["Q0"]; !ok {
		t.Fatal("Q0 missing from parsed document")
	}
	if got := params["Q51"]; len(got) != 2 {
		t.Fatalf("Q51 params = %v", got)
	}
	res, err := eng.IsCovered(queries["Q0"])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("Q0 from the document must be covered:\n%s", res.Explain())
	}
}

func TestRunModesAgainstDocumentWithData(t *testing.T) {
	// Generate data matching the document schema and save it as TSV.
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 3, AccidentsPerDay: 5, MaxVehicles: 3, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := load.SaveInstance(acc.Instance, dir); err != nil {
		t.Fatal(err)
	}
	doc := filepath.Join("testdata", "accidents.bq")
	for _, mode := range []string{"check", "plan", "explain", "run", "baseline"} {
		if err := run(cfg(func(c *cliConfig) { c.file = doc; c.dataDir = dir; c.query = "Q0"; c.mode = mode })); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
	if err := run(cfg(func(c *cliConfig) { c.file = doc; c.dataDir = dir; c.query = "Q51"; c.mode = "specialize" })); err != nil {
		t.Errorf("specialize: %v", err)
	}
	// Parallel execution answers the same document query without error.
	if err := run(cfg(func(c *cliConfig) { c.file = doc; c.dataDir = dir; c.query = "Q0"; c.mode = "run"; c.workers = 4 })); err != nil {
		t.Errorf("run with workers=4: %v", err)
	}
}

func TestRunDemoModes(t *testing.T) {
	if err := run(cfg(func(c *cliConfig) { c.demo = "accidents"; c.query = "Q0"; c.mode = "run"; c.days = 2 })); err != nil {
		t.Errorf("demo accidents: %v", err)
	}
	if err := run(cfg(func(c *cliConfig) { c.demo = "social"; c.query = "GraphSearch"; c.mode = "check"; c.people = 200 })); err != nil {
		t.Errorf("demo social: %v", err)
	}
	// Save/export path.
	dir := t.TempDir()
	if err := run(cfg(func(c *cliConfig) {
		c.saveDir = dir
		c.demo = "accidents"
		c.query = "Q0"
		c.mode = "check"
		c.days = 2
	})); err != nil {
		t.Errorf("save: %v", err)
	}
}

// TestRunServingFlags exercises the Query-API flags: a generous budget
// admits Q0, a budget of 0 refuses it (without erroring — admission
// control is a negotiated outcome, not a failure), an unknown fallback is
// rejected, and a refuse-mode run of a bounded query still succeeds.
func TestRunServingFlags(t *testing.T) {
	if err := run(cfg(func(c *cliConfig) {
		c.demo = "accidents"
		c.query = "Q0"
		c.mode = "run"
		c.days = 2
		c.budget = 1 << 40
		c.fallback = "refuse"
	})); err != nil {
		t.Errorf("bounded Q0 under a generous budget: %v", err)
	}
	if err := run(cfg(func(c *cliConfig) { c.demo = "accidents"; c.query = "Q0"; c.mode = "run"; c.days = 2; c.budget = 0 })); err != nil {
		t.Errorf("budget refusal must not be an error: %v", err)
	}
	if err := run(cfg(func(c *cliConfig) {
		c.demo = "accidents"
		c.query = "Q0"
		c.mode = "run"
		c.days = 2
		c.fallback = "bogus"
	})); err == nil {
		t.Error("unknown fallback must error")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(cfg(func(c *cliConfig) { c.mode = "explain" })); err == nil {
		t.Error("no input source must error")
	}
	if err := run(cfg(func(c *cliConfig) { c.demo = "accidents"; c.query = "Ghost"; c.mode = "run"; c.days = 1 })); err == nil {
		t.Error("unknown query must error")
	}
	if err := run(cfg(func(c *cliConfig) { c.demo = "accidents"; c.query = "Q0"; c.mode = "bogus"; c.days = 1 })); err == nil {
		t.Error("unknown mode must error")
	}
	if err := run(cfg(func(c *cliConfig) { c.demo = "accidents"; c.query = "Q0"; c.mode = "specialize"; c.days = 1 })); err == nil {
		t.Error("specialize without params must error")
	}
	// Listing queries (empty -query) is not an error.
	if err := run(cfg(func(c *cliConfig) { c.demo = "accidents"; c.mode = "run"; c.days = 1 })); err != nil {
		t.Errorf("query listing: %v", err)
	}
}

// TestQueryListingSorted pins the listing order: map iteration order is
// random, so the listing must sort names (Q0 before Q51, every run).
func TestQueryListingSorted(t *testing.T) {
	old := os.Stdout
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = pw
	runErr := run(cfg(func(c *cliConfig) { c.demo = "accidents"; c.mode = "run"; c.days = 1 }))
	pw.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, pr); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	out := buf.String()
	i0, i51 := strings.Index(out, "Q0"), strings.Index(out, "Q51")
	if i0 < 0 || i51 < 0 || i0 > i51 {
		t.Errorf("listing must print Q0 before Q51:\n%s", out)
	}
	var prev string
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "  ") {
			continue
		}
		name := strings.TrimSpace(line)
		if prev != "" && name < prev {
			t.Errorf("listing not sorted: %q after %q", name, prev)
		}
		prev = name
	}
}

// captureStdout runs fn with os.Stdout redirected, returning what it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = pw
	runErr := fn()
	pw.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, pr); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return buf.String()
}

// TestRunStreamNDJSON checks the -stream flag: one JSON object per row,
// decodable, with the query's column names as keys.
func TestRunStreamNDJSON(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(cfg(func(c *cliConfig) {
			c.demo = "accidents"
			c.query = "Q0"
			c.mode = "run"
			c.days = 2
			c.stream = true
		}))
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("no NDJSON rows:\n%s", out)
	}
	for _, line := range lines {
		var row map[string]interface{}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		if _, ok := row["xa"]; !ok {
			t.Fatalf("row %q lacks the xa column", line)
		}
	}
}

// TestRunApplyDelta checks the -apply flag end to end: the delta is
// ingested before the query, so a driver age inserted by the delta shows
// up in Q0's streamed answers, and a violating delta is rejected.
func TestRunApplyDelta(t *testing.T) {
	dir := t.TempDir()
	deltaPath := filepath.Join(dir, "delta.tsv")
	delta := "+\tAccident\t900001\tQueen's Park\t1/5/2005\n" +
		"+\tCasualty\t900001\t900001\t1\t900001\n" +
		"+\tVehicle\t900001\tzed\t2001\n"
	if err := os.WriteFile(deltaPath, []byte(delta), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return run(cfg(func(c *cliConfig) {
			c.demo = "accidents"
			c.apply = deltaPath
			c.query = "Q0"
			c.mode = "run"
			c.days = 2
			c.stream = true
		}))
	})
	if !strings.Contains(out, "applied "+deltaPath+": +3 -0") {
		t.Errorf("missing apply summary:\n%s", out)
	}
	if !strings.Contains(out, "2001") {
		t.Errorf("delta-inserted driver age missing from answers:\n%s", out)
	}

	// A batch violating ψ3 (two districts for one aid) must be rejected.
	badPath := filepath.Join(dir, "bad.tsv")
	bad := "+\tAccident\t1\tSoho\t9/9/1999\n"
	if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(cfg(func(c *cliConfig) {
		c.demo = "accidents"
		c.apply = badPath
		c.query = "Q0"
		c.mode = "run"
		c.days = 2
	}))
	if err == nil || !strings.Contains(err.Error(), "violate") {
		t.Errorf("violating delta must be rejected with the violation list, got %v", err)
	}

	// -apply without an instance is a usage error.
	if err := run(cfg(func(c *cliConfig) {
		c.file = filepath.Join("testdata", "accidents.bq")
		c.apply = deltaPath
		c.mode = "check"
		c.query = "Q0"
	})); err == nil {
		t.Error("-apply without data must error")
	}
}

// TestRunDataDirRecovery drives -data-dir across two invocations: the
// first loads the demo, WAL-logs an applied delta, and exits; the second
// must recover the committed state — demo load skipped, the delta's
// tuples present — exactly as a beserve restart would.
func TestRunDataDirRecovery(t *testing.T) {
	dir := t.TempDir()
	deltaPath := filepath.Join(dir, "delta.tsv")
	delta := "+\tAccident\t900001\tQueen's Park\t1/5/2005\n" +
		"+\tCasualty\t900001\t900001\t1\t900001\n" +
		"+\tVehicle\t900001\tzed\t2001\n"
	if err := os.WriteFile(deltaPath, []byte(delta), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		ddir := filepath.Join(dir, "state", map[int]string{1: "k1", 4: "k4"}[shards])
		if err := run(cfg(func(c *cliConfig) {
			c.demo = "accidents"
			c.days = 2
			c.shards = shards
			c.durableDir = ddir
			c.apply = deltaPath
			c.query = "Q0"
			c.mode = "check"
		})); err != nil {
			t.Fatalf("shards=%d first run: %v", shards, err)
		}
		out := captureStdout(t, func() error {
			return run(cfg(func(c *cliConfig) {
				c.demo = "accidents"
				c.days = 2
				c.shards = shards
				c.durableDir = ddir
				c.query = "Q0"
				c.mode = "run"
				c.stream = true
			}))
		})
		if !strings.Contains(out, "recovered committed state from "+ddir+" (version 1") {
			t.Errorf("shards=%d: recovery banner missing:\n%s", shards, out)
		}
		if !strings.Contains(out, "2001") {
			t.Errorf("shards=%d: WAL-logged driver age missing after recovery:\n%s", shards, out)
		}
	}
}

// slowWriter models a congested consumer: each row write stalls long
// enough that a request deadline strikes mid-stream.
type slowWriter struct{ rows int }

func (s *slowWriter) Write(p []byte) (int, error) {
	s.rows += strings.Count(string(p), "\n")
	time.Sleep(500 * time.Microsecond)
	return len(p), nil
}

// TestStreamDeadlinePropagatesToExitCode is the regression test for the
// -stream timeout hole: a deadline that struck while rows were being
// written used to leave the stream silently truncated — streamNDJSON
// reported no error, run printed the summary, and bequery exited 0 on
// an incomplete NDJSON pipeline. The cut must surface as an error so
// main exits nonzero.
func TestStreamDeadlinePropagatesToExitCode(t *testing.T) {
	eng, _, queries, _, _, err := setup(cfg(func(c *cliConfig) { c.demo = "social"; c.people = 100 }))
	if err != nil {
		t.Fatal(err)
	}
	q, ok := queries["allPairs"]
	if !ok {
		t.Fatal("social demo lost the allPairs query")
	}
	res, err := eng.Query(context.Background(), q,
		core.WithStream(), core.WithDeadline(time.Now().Add(60*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	w := &slowWriter{}
	serr := streamNDJSON(w, res)
	if serr == nil {
		t.Fatalf("stream cut by the deadline after %d rows returned nil (bequery would exit 0)", w.rows)
	}
	if !errors.Is(serr, context.DeadlineExceeded) {
		t.Fatalf("stream error = %v, want a DeadlineExceeded", serr)
	}
	// run's -stream branch returns this error, so main exits 1; a full
	// drain would have emitted every row.
	fullRes, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if w.rows >= len(fullRes.Rows) {
		t.Fatalf("deadline did not cut the stream: %d of %d rows", w.rows, len(fullRes.Rows))
	}
}
