package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/load"
	"repro/internal/workload"
)

func TestSetupFromDocument(t *testing.T) {
	eng, queries, params, err := setup(filepath.Join("testdata", "accidents.bq"), "", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := queries["Q0"]; !ok {
		t.Fatal("Q0 missing from parsed document")
	}
	if got := params["Q51"]; len(got) != 2 {
		t.Fatalf("Q51 params = %v", got)
	}
	res, err := eng.IsCovered(queries["Q0"])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("Q0 from the document must be covered:\n%s", res.Explain())
	}
}

func TestRunModesAgainstDocumentWithData(t *testing.T) {
	// Generate data matching the document schema and save it as TSV.
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 3, AccidentsPerDay: 5, MaxVehicles: 3, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := load.SaveInstance(acc.Instance, dir); err != nil {
		t.Fatal(err)
	}
	doc := filepath.Join("testdata", "accidents.bq")
	for _, mode := range []string{"check", "plan", "explain", "run", "baseline"} {
		if err := run(doc, dir, "", "", "Q0", mode, 1, 0, 0, 1, -1, 0, "scan"); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
	if err := run(doc, dir, "", "", "Q51", "specialize", 1, 0, 0, 1, -1, 0, "scan"); err != nil {
		t.Errorf("specialize: %v", err)
	}
	// Parallel execution answers the same document query without error.
	if err := run(doc, dir, "", "", "Q0", "run", 1, 0, 0, 4, -1, 0, "scan"); err != nil {
		t.Errorf("run with workers=4: %v", err)
	}
}

func TestRunDemoModes(t *testing.T) {
	if err := run("", "", "", "accidents", "Q0", "run", 1, 2, 0, 1, -1, 0, "scan"); err != nil {
		t.Errorf("demo accidents: %v", err)
	}
	if err := run("", "", "", "social", "GraphSearch", "check", 1, 0, 200, 1, -1, 0, "scan"); err != nil {
		t.Errorf("demo social: %v", err)
	}
	// Save/export path.
	dir := t.TempDir()
	if err := run("", "", dir, "accidents", "Q0", "check", 1, 2, 0, 1, -1, 0, "scan"); err != nil {
		t.Errorf("save: %v", err)
	}
}

// TestRunServingFlags exercises the Query-API flags: a generous budget
// admits Q0, a budget of 0 refuses it (without erroring — admission
// control is a negotiated outcome, not a failure), an unknown fallback is
// rejected, and a refuse-mode run of a bounded query still succeeds.
func TestRunServingFlags(t *testing.T) {
	if err := run("", "", "", "accidents", "Q0", "run", 1, 2, 0, 1, 1<<40, 0, "refuse"); err != nil {
		t.Errorf("bounded Q0 under a generous budget: %v", err)
	}
	if err := run("", "", "", "accidents", "Q0", "run", 1, 2, 0, 1, 0, 0, "scan"); err != nil {
		t.Errorf("budget refusal must not be an error: %v", err)
	}
	if err := run("", "", "", "accidents", "Q0", "run", 1, 2, 0, 1, -1, 0, "bogus"); err == nil {
		t.Error("unknown fallback must error")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", "", "", "explain", 1, 0, 0, 1, -1, 0, "scan"); err == nil {
		t.Error("no input source must error")
	}
	if err := run("", "", "", "accidents", "Ghost", "run", 1, 1, 0, 1, -1, 0, "scan"); err == nil {
		t.Error("unknown query must error")
	}
	if err := run("", "", "", "accidents", "Q0", "bogus", 1, 1, 0, 1, -1, 0, "scan"); err == nil {
		t.Error("unknown mode must error")
	}
	if err := run("", "", "", "accidents", "Q0", "specialize", 1, 1, 0, 1, -1, 0, "scan"); err == nil {
		t.Error("specialize without params must error")
	}
	// Listing queries (empty -query) is not an error.
	if err := run("", "", "", "accidents", "", "run", 1, 1, 0, 1, -1, 0, "scan"); err != nil {
		t.Errorf("query listing: %v", err)
	}
}

// TestQueryListingSorted pins the listing order: map iteration order is
// random, so the listing must sort names (Q0 before Q51, every run).
func TestQueryListingSorted(t *testing.T) {
	old := os.Stdout
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = pw
	runErr := run("", "", "", "accidents", "", "run", 1, 1, 0, 1, -1, 0, "scan")
	pw.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, pr); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	out := buf.String()
	i0, i51 := strings.Index(out, "Q0"), strings.Index(out, "Q51")
	if i0 < 0 || i51 < 0 || i0 > i51 {
		t.Errorf("listing must print Q0 before Q51:\n%s", out)
	}
	var prev string
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "  ") {
			continue
		}
		name := strings.TrimSpace(line)
		if prev != "" && name < prev {
			t.Errorf("listing not sorted: %q after %q", name, prev)
		}
		prev = name
	}
}
