package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

func TestRunDispatch(t *testing.T) {
	// Each experiment id must dispatch; e10 is the cheapest full one.
	if err := run("e10", 2, 2, ""); err != nil {
		t.Errorf("e10: %v", err)
	}
	if err := run("e7", 2, 2, ""); err != nil {
		t.Errorf("e7: %v", err)
	}
	if err := run("nope", 2, 2, ""); err == nil {
		t.Error("unknown experiment must error")
	}
}

// TestWriteJSON pins the BENCH_<ID>.json shape the CI compare step and
// the committed trajectory depend on.
func TestWriteJSON(t *testing.T) {
	dir := t.TempDir()
	tb := &bench.Table{ID: "E99", Title: "test"}
	tb.AddMetric("speedup", 4.2, "x")
	if err := writeJSON(dir, tb); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(dir, "BENCH_E99.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal(buf, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Experiment != "E99" || rec.Commit == "" || len(rec.Metrics) != 1 ||
		rec.Metrics[0].Name != "speedup" || rec.Metrics[0].Value != 4.2 || rec.Metrics[0].Unit != "x" {
		t.Errorf("record = %+v", rec)
	}

	// A metric-less table writes nothing.
	if err := writeJSON(dir, &bench.Table{ID: "E98"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_E98.json")); !os.IsNotExist(err) {
		t.Error("metric-less table must not produce a file")
	}
}
