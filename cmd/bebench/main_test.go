package main

import "testing"

func TestRunDispatch(t *testing.T) {
	// Each experiment id must dispatch; e10 is the cheapest full one.
	if err := run("e10", 2, 2); err != nil {
		t.Errorf("e10: %v", err)
	}
	if err := run("e7", 2, 2); err != nil {
		t.Errorf("e7: %v", err)
	}
	if err := run("nope", 2, 2); err == nil {
		t.Error("unknown experiment must error")
	}
}
