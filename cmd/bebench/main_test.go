package main

import "testing"

func TestRunDispatch(t *testing.T) {
	// Each experiment id must dispatch; e10 is the cheapest full one.
	if err := run("e10"); err != nil {
		t.Errorf("e10: %v", err)
	}
	if err := run("e7"); err != nil {
		t.Errorf("e7: %v", err)
	}
	if err := run("nope"); err == nil {
		t.Error("unknown experiment must error")
	}
}
