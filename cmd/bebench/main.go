// Command bebench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	bebench                    # run every experiment
//	bebench -exp e1            # one experiment (e1..e17)
//	bebench -exp e11 -workers 8  # serving-layer experiment at 8 workers
//	bebench -exp e13 -shards 8   # sharding sweep up to 8 shards
//	bebench -exp e15 -json .     # write BENCH_E15.json next to the tables
//
// -json dir additionally persists each experiment's headline metrics as
// BENCH_<ID>.json — {"experiment","commit","metrics":[{name,value,unit}]}
// — the machine-readable trajectory the repo commits so CI can diff a
// fresh run against the last recorded baseline and flag regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e17) or all")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max worker goroutines for the e11 parallel-execution sweep")
	shards := flag.Int("shards", 8, "max shard count for the e13 sharding sweep")
	jsonDir := flag.String("json", "", "also write BENCH_<ID>.json metric files into this directory")
	flag.Parse()
	if err := run(strings.ToLower(*exp), *workers, *shards, *jsonDir); err != nil {
		fmt.Fprintln(os.Stderr, "bebench:", err)
		os.Exit(1)
	}
}

// shardCounts doubles from 1 up to max, like E11WorkerCounts; K = 1 is
// always included, so a nonsensical -shards still measures the baseline.
func shardCounts(max int) []int {
	out := []int{1}
	for k := 2; k <= max; k *= 2 {
		out = append(out, k)
	}
	return out
}

// benchRecord is the on-disk shape of one BENCH_<ID>.json file.
type benchRecord struct {
	Experiment string         `json:"experiment"`
	Commit     string         `json:"commit"`
	Metrics    []bench.Metric `json:"metrics"`
}

// gitCommit identifies the working tree for the trajectory record;
// "unknown" outside a git checkout rather than an error — the metrics
// are still worth writing.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// writeJSON persists t's headline metrics as dir/BENCH_<ID>.json.
// Tables without metrics are skipped — no file beats an empty lie.
func writeJSON(dir string, t *bench.Table) error {
	if len(t.Metrics) == 0 {
		return nil
	}
	rec := benchRecord{Experiment: t.ID, Commit: gitCommit(), Metrics: t.Metrics}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+t.ID+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bebench: wrote %s\n", path)
	return nil
}

func run(exp string, workers, shards int, jsonDir string) error {
	emit := func(tables ...*bench.Table) error {
		for _, t := range tables {
			fmt.Println(t.Render())
			if jsonDir != "" {
				if err := writeJSON(jsonDir, t); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if exp == "all" {
		tables, err := bench.All(workers)
		if err != nil {
			return err
		}
		return emit(tables...)
	}
	var t *bench.Table
	var err error
	switch exp {
	case "e1":
		t, err = bench.E1ScaleSweep([]int{5, 20, 80, 320})
	case "e2":
		t, err = bench.E2CQPScaling([]int{2, 4, 8, 16, 32, 64})
	case "e3":
		t, err = bench.E3UCQCoverage([]int{3, 4, 5, 6, 7})
	case "e4":
		t, err = bench.E4CoverageRate(200, 700)
	case "e5":
		t, err = bench.E5Speedup([]int{5, 20, 80, 320})
	case "e6":
		t, err = bench.E6GraphPatterns(5000)
	case "e7":
		t, err = bench.E7Envelopes()
	case "e8":
		t, err = bench.E8QSP([]int{2, 4, 6, 8})
	case "e9":
		t, err = bench.E9GeneralConstraints([]int{1 << 8, 1 << 12, 1 << 16, 1 << 20})
	case "e10":
		t, err = bench.E10PaperExamples()
	case "e11":
		t, err = bench.E11Concurrency(10000, bench.E11WorkerCounts(workers))
	case "e12":
		t, err = bench.E12LiveUpdates([]int{5, 20, 80, 320}, 30)
	case "e13":
		t, err = bench.E13Sharding(shardCounts(shards), 30)
	case "e14":
		t, err = bench.E14NetworkServing(workers, time.Second)
	case "e15":
		t, err = bench.E15Durability(40, 30)
	case "e16":
		t, err = bench.E16TraceOverhead(40, time.Second)
	case "e17":
		t, err = bench.E17DistributedServing(workers, time.Second, []int{2, 4})
	default:
		return fmt.Errorf("unknown experiment %q (want e1..e17 or all)", exp)
	}
	if err != nil {
		return err
	}
	return emit(t)
}
