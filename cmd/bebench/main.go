// Command bebench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	bebench                    # run every experiment
//	bebench -exp e1            # one experiment (e1..e14)
//	bebench -exp e11 -workers 8  # serving-layer experiment at 8 workers
//	bebench -exp e13 -shards 8   # sharding sweep up to 8 shards
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e14) or all")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max worker goroutines for the e11 parallel-execution sweep")
	shards := flag.Int("shards", 8, "max shard count for the e13 sharding sweep")
	flag.Parse()
	if err := run(strings.ToLower(*exp), *workers, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "bebench:", err)
		os.Exit(1)
	}
}

// shardCounts doubles from 1 up to max, like E11WorkerCounts; K = 1 is
// always included, so a nonsensical -shards still measures the baseline.
func shardCounts(max int) []int {
	out := []int{1}
	for k := 2; k <= max; k *= 2 {
		out = append(out, k)
	}
	return out
}

func run(exp string, workers, shards int) error {
	if exp == "all" {
		tables, err := bench.All(workers)
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		return nil
	}
	var t *bench.Table
	var err error
	switch exp {
	case "e1":
		t, err = bench.E1ScaleSweep([]int{5, 20, 80, 320})
	case "e2":
		t, err = bench.E2CQPScaling([]int{2, 4, 8, 16, 32, 64})
	case "e3":
		t, err = bench.E3UCQCoverage([]int{3, 4, 5, 6, 7})
	case "e4":
		t, err = bench.E4CoverageRate(200, 700)
	case "e5":
		t, err = bench.E5Speedup([]int{5, 20, 80, 320})
	case "e6":
		t, err = bench.E6GraphPatterns(5000)
	case "e7":
		t, err = bench.E7Envelopes()
	case "e8":
		t, err = bench.E8QSP([]int{2, 4, 6, 8})
	case "e9":
		t, err = bench.E9GeneralConstraints([]int{1 << 8, 1 << 12, 1 << 16, 1 << 20})
	case "e10":
		t, err = bench.E10PaperExamples()
	case "e11":
		t, err = bench.E11Concurrency(10000, bench.E11WorkerCounts(workers))
	case "e12":
		t, err = bench.E12LiveUpdates([]int{5, 20, 80, 320}, 30)
	case "e13":
		t, err = bench.E13Sharding(shardCounts(shards), 30)
	case "e14":
		t, err = bench.E14NetworkServing(workers, time.Second)
	default:
		return fmt.Errorf("unknown experiment %q (want e1..e14 or all)", exp)
	}
	if err != nil {
		return err
	}
	fmt.Println(t.Render())
	return nil
}
