package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// cfg builds a cliConfig with the flag defaults, tweaked by fn.
func cfg(fn func(*cliConfig)) cliConfig {
	c := cliConfig{
		addr: "127.0.0.1:0", days: 2, people: 200, workers: 1, shards: 1,
		maxInFlight: 16, queueTimeout: time.Second, shutdownGrace: 5 * time.Second,
	}
	if fn != nil {
		fn(&c)
	}
	return c
}

func TestSetupErrors(t *testing.T) {
	ctx := context.Background()
	if _, _, err := build(ctx, cfg(nil)); err == nil {
		t.Error("no input source must error")
	}
	if _, _, err := build(ctx, cfg(func(c *cliConfig) { c.demo = "bogus" })); err == nil {
		t.Error("unknown demo must error")
	}
	if _, _, err := build(ctx, cfg(func(c *cliConfig) { c.file = "does-not-exist.bq" })); err == nil {
		t.Error("missing document must error")
	}
}

// TestServeAndShutdown boots the real server on an ephemeral port,
// exercises the endpoints over TCP for 1 and 4 shards, then shuts down
// gracefully via context cancellation (the SIGINT path).
func TestServeAndShutdown(t *testing.T) {
	for _, shards := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		addrCh := make(chan string, 1)
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, cfg(func(c *cliConfig) { c.demo = "accidents"; c.shards = shards }),
				func(addr string) { addrCh <- addr })
		}()
		var base string
		select {
		case addr := <-addrCh:
			base = "http://" + addr
		case err := <-done:
			t.Fatalf("shards=%d: server exited before listening: %v", shards, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("shards=%d: server never came up", shards)
		}

		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Status string
			Size   int
		}
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if health.Status != "ok" || health.Size == 0 {
			t.Errorf("shards=%d: healthz = %+v", shards, health)
		}

		resp, err = http.Post(base+"/v1/query", "application/json", strings.NewReader(`{"query":"Q0"}`))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("shards=%d: query status=%d err=%v", shards, resp.StatusCode, err)
		}
		if !strings.Contains(string(body), `"xa":`) {
			t.Errorf("shards=%d: rows lack the xa column:\n%s", shards, body)
		}

		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("shards=%d: graceful shutdown returned %v", shards, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("shards=%d: shutdown never completed", shards)
		}
	}
}
