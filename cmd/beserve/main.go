// Command beserve exposes the bounded-evaluation engine over HTTP: the
// network boundary in front of Engine.Query and Engine.Apply, with the
// same consistency and admission guarantees (see internal/server).
//
// Usage:
//
//	beserve -addr :8080 -demo accidents
//	beserve -addr :8080 -file doc.bq -data dir -shards 4
//	beserve -addr :8080 -demo accidents -data-dir /var/lib/beserve
//	beserve -demo social -people 5000 -max-inflight 128 -queue-timeout 500ms
//
// Endpoints:
//
//	POST /v1/query      {"query":"Q0","budget":100,"timeout":"2s"} → NDJSON rows
//	POST /v1/apply      delta TSV body → {"inserted":N,"deleted":N,"size":|D|}
//	POST /v1/checkpoint → {"version":N} (requires -data-dir)
//	GET  /v1/explain?query=Q0
//	GET  /v1/schema
//	GET  /healthz
//	GET  /metrics
//
// -shards K serves through the hash-partitioned internal/shard engine;
// the wire behavior is byte-identical to the single-node engine's.
//
// Distributed serving (internal/cluster) splits those shards across
// processes:
//
//	beserve -addr :8081 -demo accidents -shard-count 3 -shard-id 0
//	beserve -addr :8082 -demo accidents -shard-count 3 -shard-id 1
//	beserve -addr :8083 -demo accidents -shard-count 3 -shard-id 2
//	beserve -addr :8080 -demo accidents -peers http://localhost:8081,http://localhost:8082,http://localhost:8083
//
// A -shard-id node loads only its hash share of the dataset and serves
// the public read surface over that share, plus the /v1/internal/*
// protocol; writes are refused with 421 not_coordinator. A -peers
// coordinator loads nothing: it attaches to the fleet (retrying until
// every node is up) and serves the whole dataset — reads route or
// scatter-gather by partition key, writes run a two-phase staged commit
// across all nodes. Its wire output is byte-identical to a single-node
// beserve over the same data.
//
// -slow-query-ms N logs every /v1/query slower than N ms as one
// structured JSON line on stderr (canonical plan-cache key, bound,
// stats, top-3 spans). -debug-addr serves net/http/pprof on a separate
// listener, so CPU/heap profiles never share a port with the API.
//
// -data-dir enables durability (internal/durable): every applied delta
// is WAL-logged and fsynced before it becomes visible, so a restart —
// including kill -9 — recovers every committed delta. On startup, a
// data directory that already holds state is recovered (checkpoint +
// WAL replay) and the initial -demo/-data load is skipped; /healthz
// reports the recovered version. On SIGINT/SIGTERM the server stops
// accepting, drains in-flight streaming responses for up to
// -shutdown-grace, then writes a final checkpoint so the next start
// recovers without replay.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/durable"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/workload"
)

// durableEngine is the durability surface shared by core.Engine and
// shard.Engine; discovered by assertion so core.Queryable stays a pure
// serving interface.
type durableEngine interface {
	Durable(ctx context.Context, dir string, hook durable.Hook) (bool, error)
	Checkpoint(ctx context.Context) (uint64, error)
	CloseDurable() error
}

// cliConfig collects every flag; one value per invocation.
type cliConfig struct {
	addr          string
	file          string
	dataDir       string
	durableDir    string
	demo          string
	days          int
	people        int
	workers       int
	shards        int
	shardID       int
	shardCount    int
	peers         string
	attachWait    time.Duration
	maxInFlight   int
	queueTimeout  time.Duration
	stallTimeout  time.Duration
	shutdownGrace time.Duration
	slowMS        int
	debugAddr     string
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.file, "file", "", "input document (relations, constraints, queries)")
	flag.StringVar(&cfg.dataDir, "data", "", "directory of <Relation>.tsv files to load with -file")
	flag.StringVar(&cfg.durableDir, "data-dir", "", "durability directory (WAL + checkpoints); existing state is recovered and the initial load skipped")
	flag.StringVar(&cfg.demo, "demo", "", "built-in workload: accidents | social")
	flag.IntVar(&cfg.days, "days", 20, "accidents demo: days of data")
	flag.IntVar(&cfg.people, "people", 2000, "social demo: people")
	flag.IntVar(&cfg.workers, "workers", 1, "default worker goroutines for plan execution (-1 = GOMAXPROCS)")
	flag.IntVar(&cfg.shards, "shards", 1, "hash-partition the data across K shards (internal/shard)")
	flag.IntVar(&cfg.shardID, "shard-id", 0, "this node's shard id when -shard-count is set")
	flag.IntVar(&cfg.shardCount, "shard-count", 0, "serve as cluster shard node -shard-id of this many; loads only that hash share")
	flag.StringVar(&cfg.peers, "peers", "", "serve as cluster coordinator over these comma-separated node base URLs (in shard order)")
	flag.DurationVar(&cfg.attachWait, "attach-wait", 30*time.Second, "how long the coordinator retries attaching to its peers at startup")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", server.DefaultMaxInFlight, "admission cap on concurrent query/apply requests")
	flag.DurationVar(&cfg.queueTimeout, "queue-timeout", server.DefaultQueueTimeout, "how long a request may wait for an admission slot before 503")
	flag.DurationVar(&cfg.stallTimeout, "stall-timeout", server.DefaultStallTimeout, "per-I/O deadline evicting stalled clients from their admission slot")
	flag.DurationVar(&cfg.shutdownGrace, "shutdown-grace", 10*time.Second, "drain window for in-flight responses on SIGINT/SIGTERM")
	flag.IntVar(&cfg.slowMS, "slow-query-ms", 0, "log a structured slow-query line to stderr when a /v1/query exceeds this many milliseconds (0 = off)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, func(addr string) { log.Printf("beserve: listening on %s", addr) }); err != nil {
		fmt.Fprintln(os.Stderr, "beserve:", err)
		os.Exit(1)
	}
}

// run builds the engine and serves until ctx is canceled, then shuts
// down gracefully — and, when -data-dir is set, writes a final
// checkpoint after the drain so the next start recovers replay-free.
// ready, when non-nil, is called with the bound listen address once the
// listener is up (tests use it to learn the port).
func run(ctx context.Context, cfg cliConfig, ready func(addr string)) error {
	srv, finalize, err := build(ctx, cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.debugAddr != "" {
		// The pprof surface lives on its own listener so it can be bound
		// to localhost (or firewalled) independently of the serving
		// address, and never shares a mux with the public API.
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dln.Close()
		log.Printf("beserve: pprof on http://%s/debug/pprof/", dln.Addr())
		go http.Serve(dln, debugMux())
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	// No blanket WriteTimeout — it would cut legitimate long streams;
	// the server's rolling per-I/O stall deadline handles dead clients.
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		// Stop accepting and drain in-flight (including streaming)
		// responses; past the grace window they are cut.
		gctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownGrace)
		defer cancel()
		shutdownErr <- hs.Shutdown(gctx)
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	err = <-shutdownErr
	// The drain is over: no writer can race the parting checkpoint.
	if ferr := finalize(); ferr != nil && err == nil {
		err = ferr
	}
	return err
}

// debugMux serves net/http/pprof on explicit routes — registering on a
// fresh mux rather than relying on the package's DefaultServeMux side
// effects, so the debug surface is exactly these five handlers.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// build assembles the engine and catalog from the flags, mirroring
// bequery's input sources (document+TSV data, or a built-in demo). The
// returned finalize runs at shutdown (after the drain): it writes the
// parting checkpoint and closes the durable store; a no-op without
// -data-dir.
func build(ctx context.Context, cfg cliConfig) (*server.Server, func() error, error) {
	eng, cat, loaded, err := setup(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	if !loaded {
		return nil, nil, fmt.Errorf("no data loaded (use -demo, or -file with -data, or -data-dir with recoverable state)")
	}
	sopts := server.Options{
		MaxInFlight:  cfg.maxInFlight,
		QueueTimeout: cfg.queueTimeout,
		StallTimeout: cfg.stallTimeout,
		SlowLog:      obs.NewSlowLog(os.Stderr, time.Duration(cfg.slowMS)*time.Millisecond),
	}
	if node, ok := eng.(*cluster.Node); ok {
		sopts.Internal = node.InternalHandler()
	}
	srv, err := server.New(eng, cat, sopts)
	if err != nil {
		return nil, nil, err
	}
	finalize := func() error { return nil }
	if de, ok := eng.(durableEngine); ok && cfg.durableDir != "" {
		finalize = func() error {
			v, err := de.Checkpoint(context.Background())
			if err != nil {
				de.CloseDurable()
				return fmt.Errorf("parting checkpoint: %w", err)
			}
			log.Printf("beserve: checkpointed version %d", v)
			return de.CloseDurable()
		}
	}
	return srv, finalize, nil
}

// attachDurable wires -data-dir into the engine: recovery if the
// directory holds state, otherwise just the WAL/checkpoint plumbing for
// writes to come. restored=true means the engine is already serving the
// recovered snapshot and the caller must skip its initial load.
func attachDurable(ctx context.Context, eng core.Queryable, dir string) (bool, error) {
	if dir == "" {
		return false, nil
	}
	de, ok := eng.(durableEngine)
	if !ok {
		return false, fmt.Errorf("engine does not support -data-dir")
	}
	restored, err := de.Durable(ctx, dir, nil)
	if err != nil {
		return false, err
	}
	if restored {
		log.Printf("beserve: recovered committed state from %s (version %d)", dir, eng.Stats().Version)
	}
	return restored, nil
}

// source is the resolved catalog plus a lazy loader for the dataset it
// describes (nil when the invocation names no data, e.g. -file without
// -data).
type source struct {
	cat  server.Catalog
	inst func() (*data.Instance, error)
}

// resolveSource turns the input flags (-file/-data or -demo) into the
// serving catalog and the dataset loader, shared by all serving modes.
func resolveSource(cfg cliConfig) (*source, error) {
	switch {
	case cfg.file != "":
		raw, err := os.ReadFile(cfg.file)
		if err != nil {
			return nil, err
		}
		doc, err := parser.Parse(string(raw))
		if err != nil {
			return nil, err
		}
		src := &source{cat: server.CatalogFromDocument(doc)}
		if cfg.dataDir != "" {
			src.inst = func() (*data.Instance, error) { return load.LoadInstance(doc.Schema, cfg.dataDir) }
		}
		return src, nil
	case cfg.demo == "accidents", cfg.demo == "social":
		var dm *workload.Demo
		var err error
		if cfg.demo == "accidents" {
			dm, err = workload.AccidentsDemo(cfg.days)
		} else {
			dm, err = workload.SocialDemo(cfg.people)
		}
		if err != nil {
			return nil, err
		}
		return &source{
			cat:  server.Catalog{Schema: dm.Schema, Access: dm.Access, Queries: dm.Queries, Params: dm.Params},
			inst: func() (*data.Instance, error) { return dm.Instance, nil },
		}, nil
	default:
		return nil, fmt.Errorf("provide -file or -demo accidents|social")
	}
}

// setup builds the engine and catalog; loaded reports whether data was
// attached (checked in O(1) — materializing a sharded engine's merged
// instance just to test for data would copy the whole dataset). With
// -data-dir, a directory already holding durable state short-circuits
// the load: the recovered snapshot IS the data.
func setup(ctx context.Context, cfg cliConfig) (core.Queryable, server.Catalog, bool, error) {
	none := server.Catalog{}
	if cfg.shardCount > 0 && cfg.peers != "" {
		return nil, none, false, fmt.Errorf("-shard-count and -peers are mutually exclusive")
	}
	src, err := resolveSource(cfg)
	if err != nil {
		return nil, none, false, err
	}
	opts := core.Options{Exec: plan.ExecOptions{Workers: cfg.workers}}
	switch {
	case cfg.peers != "":
		eng, err := setupCoordinator(ctx, cfg, src, opts)
		if err != nil {
			return nil, none, false, err
		}
		return eng, src.cat, true, nil
	case cfg.shardCount > 0:
		return setupShardNode(ctx, cfg, src, opts)
	default:
		eng, err := shard.NewOrCore(src.cat.Schema, src.cat.Access, opts, cfg.shards)
		if err != nil {
			return nil, none, false, err
		}
		restored, err := attachDurable(ctx, eng, cfg.durableDir)
		if err != nil {
			return nil, none, false, err
		}
		loaded := restored
		if src.inst != nil && !restored {
			d, err := src.inst()
			if err != nil {
				return nil, none, false, err
			}
			if err := eng.Load(d); err != nil {
				return nil, none, false, err
			}
			loaded = true
		}
		return eng, src.cat, loaded, nil
	}
}

// setupShardNode builds a cluster shard node: it keeps only its hash
// share of the dataset (the whole dataset may be offered — every node
// in a fleet can be pointed at the same -demo or -data) and exposes the
// internal protocol the coordinator drives.
func setupShardNode(ctx context.Context, cfg cliConfig, src *source, opts core.Options) (core.Queryable, server.Catalog, bool, error) {
	none := server.Catalog{}
	node, err := cluster.NewNode(src.cat.Schema, src.cat.Access, cfg.shardID, cfg.shardCount, cluster.Options{Core: opts})
	if err != nil {
		return nil, none, false, err
	}
	restored, err := attachDurable(ctx, node, cfg.durableDir)
	if err != nil {
		return nil, none, false, err
	}
	loaded := restored
	if src.inst != nil && !restored {
		d, err := src.inst()
		if err != nil {
			return nil, none, false, err
		}
		if err := node.Load(d); err != nil {
			return nil, none, false, err
		}
		loaded = true
	}
	log.Printf("beserve: shard node %d of %d (local size %d)", cfg.shardID, cfg.shardCount, node.Stats().Size)
	return node, src.cat, loaded, nil
}

// setupCoordinator builds the scatter-gather coordinator and attaches
// to the fleet, retrying while the nodes come up. The coordinator loads
// no data of its own — the nodes' committed state is the dataset — so
// -data-dir is refused here (durability lives on the nodes).
func setupCoordinator(ctx context.Context, cfg cliConfig, src *source, opts core.Options) (core.Queryable, error) {
	if cfg.durableDir != "" {
		return nil, fmt.Errorf("-data-dir is a shard-node flag; the coordinator holds no data")
	}
	urls := strings.Split(cfg.peers, ",")
	for i := range urls {
		urls[i] = strings.TrimRight(strings.TrimSpace(urls[i]), "/")
	}
	eng, err := cluster.New(src.cat.Schema, src.cat.Access, urls, cluster.Options{Core: opts})
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(cfg.attachWait)
	for {
		err = eng.Attach(ctx)
		if err == nil {
			break
		}
		if ctx.Err() != nil || !time.Now().Before(deadline) {
			return nil, fmt.Errorf("attach to peers: %w", err)
		}
		time.Sleep(500 * time.Millisecond)
	}
	st := eng.Stats()
	log.Printf("beserve: coordinator over %d shard nodes (size %d, version %d)", eng.Shards(), st.Size, st.Version)
	return eng, nil
}
