// Command beserve exposes the bounded-evaluation engine over HTTP: the
// network boundary in front of Engine.Query and Engine.Apply, with the
// same consistency and admission guarantees (see internal/server).
//
// Usage:
//
//	beserve -addr :8080 -demo accidents
//	beserve -addr :8080 -file doc.bq -data dir -shards 4
//	beserve -demo social -people 5000 -max-inflight 128 -queue-timeout 500ms
//
// Endpoints:
//
//	POST /v1/query    {"query":"Q0","budget":100,"timeout":"2s"} → NDJSON rows
//	POST /v1/apply    delta TSV body → {"inserted":N,"deleted":N,"size":|D|}
//	GET  /v1/explain?query=Q0
//	GET  /v1/schema
//	GET  /healthz
//	GET  /metrics
//
// -shards K serves through the hash-partitioned internal/shard engine;
// the wire behavior is byte-identical to the single-node engine's. On
// SIGINT/SIGTERM the server stops accepting, drains in-flight streaming
// responses for up to -shutdown-grace, then exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/workload"
)

// cliConfig collects every flag; one value per invocation.
type cliConfig struct {
	addr          string
	file          string
	dataDir       string
	demo          string
	days          int
	people        int
	workers       int
	shards        int
	maxInFlight   int
	queueTimeout  time.Duration
	stallTimeout  time.Duration
	shutdownGrace time.Duration
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.file, "file", "", "input document (relations, constraints, queries)")
	flag.StringVar(&cfg.dataDir, "data", "", "directory of <Relation>.tsv files to load with -file")
	flag.StringVar(&cfg.demo, "demo", "", "built-in workload: accidents | social")
	flag.IntVar(&cfg.days, "days", 20, "accidents demo: days of data")
	flag.IntVar(&cfg.people, "people", 2000, "social demo: people")
	flag.IntVar(&cfg.workers, "workers", 1, "default worker goroutines for plan execution (-1 = GOMAXPROCS)")
	flag.IntVar(&cfg.shards, "shards", 1, "hash-partition the data across K shards (internal/shard)")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", server.DefaultMaxInFlight, "admission cap on concurrent query/apply requests")
	flag.DurationVar(&cfg.queueTimeout, "queue-timeout", server.DefaultQueueTimeout, "how long a request may wait for an admission slot before 503")
	flag.DurationVar(&cfg.stallTimeout, "stall-timeout", server.DefaultStallTimeout, "per-I/O deadline evicting stalled clients from their admission slot")
	flag.DurationVar(&cfg.shutdownGrace, "shutdown-grace", 10*time.Second, "drain window for in-flight responses on SIGINT/SIGTERM")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, func(addr string) { log.Printf("beserve: listening on %s", addr) }); err != nil {
		fmt.Fprintln(os.Stderr, "beserve:", err)
		os.Exit(1)
	}
}

// run builds the engine and serves until ctx is canceled, then shuts
// down gracefully. ready, when non-nil, is called with the bound listen
// address once the listener is up (tests use it to learn the port).
func run(ctx context.Context, cfg cliConfig, ready func(addr string)) error {
	srv, err := build(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	// No blanket WriteTimeout — it would cut legitimate long streams;
	// the server's rolling per-I/O stall deadline handles dead clients.
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		// Stop accepting and drain in-flight (including streaming)
		// responses; past the grace window they are cut.
		gctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownGrace)
		defer cancel()
		shutdownErr <- hs.Shutdown(gctx)
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return <-shutdownErr
}

// build assembles the engine and catalog from the flags, mirroring
// bequery's input sources (document+TSV data, or a built-in demo).
func build(cfg cliConfig) (*server.Server, error) {
	eng, cat, loaded, err := setup(cfg)
	if err != nil {
		return nil, err
	}
	if !loaded {
		return nil, fmt.Errorf("no data loaded (use -demo, or -file with -data)")
	}
	return server.New(eng, cat, server.Options{
		MaxInFlight:  cfg.maxInFlight,
		QueueTimeout: cfg.queueTimeout,
		StallTimeout: cfg.stallTimeout,
	})
}

// setup builds the engine and catalog; loaded reports whether data was
// attached (checked in O(1) — materializing a sharded engine's merged
// instance just to test for data would copy the whole dataset).
func setup(cfg cliConfig) (core.Queryable, server.Catalog, bool, error) {
	none := server.Catalog{}
	opts := core.Options{Exec: plan.ExecOptions{Workers: cfg.workers}}
	switch {
	case cfg.file != "":
		raw, err := os.ReadFile(cfg.file)
		if err != nil {
			return nil, none, false, err
		}
		doc, err := parser.Parse(string(raw))
		if err != nil {
			return nil, none, false, err
		}
		eng, err := shard.NewOrCore(doc.Schema, doc.Access, opts, cfg.shards)
		if err != nil {
			return nil, none, false, err
		}
		loaded := false
		if cfg.dataDir != "" {
			d, err := load.LoadInstance(doc.Schema, cfg.dataDir)
			if err != nil {
				return nil, none, false, err
			}
			if err := eng.Load(d); err != nil {
				return nil, none, false, err
			}
			loaded = true
		}
		return eng, server.CatalogFromDocument(doc), loaded, nil
	case cfg.demo == "accidents", cfg.demo == "social":
		var dm *workload.Demo
		var err error
		if cfg.demo == "accidents" {
			dm, err = workload.AccidentsDemo(cfg.days)
		} else {
			dm, err = workload.SocialDemo(cfg.people)
		}
		if err != nil {
			return nil, none, false, err
		}
		eng, err := shard.NewOrCore(dm.Schema, dm.Access, opts, cfg.shards)
		if err != nil {
			return nil, none, false, err
		}
		if err := eng.Load(dm.Instance); err != nil {
			return nil, none, false, err
		}
		return eng, server.Catalog{Schema: dm.Schema, Access: dm.Access, Queries: dm.Queries, Params: dm.Params}, true, nil
	default:
		return nil, none, false, fmt.Errorf("provide -file or -demo accidents|social")
	}
}
