// E-commerce: bounded query specialization (Section 5).
//
// A storefront query template has designated parameters (make, price
// band, warehouse) that users fill in before execution. The template
// itself is not boundedly evaluable, but QSP finds the minimum parameter
// set whose instantiation makes every specialization covered — an
// offline, one-time analysis per template, exactly as the paper suggests.
//
// Run: go run ./examples/ecommerce
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/specialize"
	"repro/internal/value"
)

func main() {
	s := schema.MustNew(
		schema.MustRelation("Product", "pid", "make", "price"),
		schema.MustRelation("Stock", "pid", "warehouse", "qty"),
		schema.MustRelation("Review", "rid", "pid", "stars"),
	)
	attrs := func(as ...schema.Attribute) []schema.Attribute { return as }
	a := access.NewSchema(
		// Each make carries at most 300 products; pid is a key; a product
		// is stocked in at most 12 warehouses and has at most 500 reviews.
		access.NewConstraint("Product", attrs("make"), attrs("pid"), 300),
		access.NewConstraint("Product", attrs("pid"), attrs("make", "price"), 1),
		access.NewConstraint("Stock", attrs("pid"), attrs("warehouse", "qty"), 12),
		access.NewConstraint("Review", attrs("pid"), attrs("stars"), 500),
	)

	// The template: prices and stock of a make's products, with parameters
	// designated by the application developer.
	q := &cq.CQ{
		Label: "Catalog", Free: []string{"price", "qty"},
		Atoms: []cq.Atom{
			cq.NewAtom("Product", cq.Var("pid"), cq.Var("make"), cq.Var("price")),
			cq.NewAtom("Stock", cq.Var("pid"), cq.Var("warehouse"), cq.Var("qty")),
		},
	}
	params := []string{"make", "warehouse", "pid"}

	eng, err := core.New(s, a, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("template:", q)
	res, err := eng.IsCovered(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("covered as written: %v (free variables %v uncovered)\n\n",
		res.Covered, res.UncoveredFree)

	// QSP: which parameters must the user fill in?
	sol, err := eng.Specialize(q, params, 2)
	if err != nil {
		log.Fatal(err)
	}
	if !sol.Found {
		log.Fatalf("not specializable: %s", sol.Reason)
	}
	fmt.Printf("QSP: instantiating %v suffices (minimum=%v, %d candidate sets tried)\n\n",
		sol.Params, sol.Minimum, sol.Tried)

	// Load a catalog and run a concrete specialization.
	d := buildCatalog(s)
	if err := eng.Load(d); err != nil {
		log.Fatal(err)
	}
	concrete := specialize.Instantiate(q, map[string]value.Value{
		"make": value.NewString("acme"),
	})
	concrete.Label = "Catalog(make=acme)"
	// WithStream defers row production: the answer table is never
	// materialized, and the storefront stops after the first screen.
	ans, err := eng.Query(context.Background(), concrete, core.WithStream())
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for range ans.Seq() {
		shown++
		if shown == 5 {
			break
		}
	}
	if ans.Err() != nil {
		log.Fatal(ans.Err())
	}
	fmt.Printf("%s: first %d rows streamed (columns %v), %d tuples fetched out of %d stored\n",
		concrete.Label, shown, ans.Columns, ans.Stats.Fetched, d.Size())

	// Proposition 5.4: with an access schema covering every relation, any
	// fully parameterized query can be boundedly specialized.
	full := access.NewSchema(
		access.NewConstraint("Product", attrs("pid"), attrs("make", "price"), 1),
		access.NewConstraint("Stock", attrs("pid"), attrs("warehouse", "qty"), 12),
		access.NewConstraint("Review", attrs("rid"), attrs("pid", "stars"), 1),
	)
	fmt.Printf("\nProposition 5.4 check: access schema covers R: %v\n", full.CoversSchema(s))
}

func buildCatalog(s *schema.Schema) *data.Instance {
	rng := rand.New(rand.NewSource(7))
	d := data.NewInstance(s)
	makes := []string{"acme", "globex", "initech", "umbrella"}
	pid := int64(0)
	for _, m := range makes {
		for i := 0; i < 250; i++ {
			pid++
			d.MustInsert("Product", value.NewInt(pid), value.NewString(m),
				value.NewInt(int64(5+rng.Intn(500))))
			for w := 0; w < 1+rng.Intn(3); w++ {
				d.MustInsert("Stock", value.NewInt(pid),
					value.NewString(fmt.Sprintf("wh%d", w)), value.NewInt(int64(rng.Intn(100))))
			}
			for r := 0; r < rng.Intn(4); r++ {
				d.MustInsert("Review", value.NewInt(pid*100+int64(r)), value.NewInt(pid),
					value.NewInt(int64(1+rng.Intn(5))))
			}
		}
	}
	return d
}
