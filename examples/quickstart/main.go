// Quickstart: the Example 1.1 pipeline in ~60 lines.
//
// It builds the accident schema and the access constraints ψ1–ψ4, loads a
// synthetic dataset satisfying them, checks that Q0 is covered, prints the
// synthesized bounded query plan with its static access bound, executes
// it, and compares the data touched against a conventional full evaluation.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/workload"
)

func main() {
	// 1. Generate a dataset satisfying ψ1–ψ4 (≤ 610 accidents/day,
	//    ≤ 192 casualties/accident, keys on aid and vid).
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 100, AccidentsPerDay: 50, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d tuples across 3 relations\n", acc.Instance.Size())
	fmt.Println("access schema:")
	fmt.Println(acc.Access)

	// 2. Build the engine and load the data (indices are built, D |= A is
	//    verified).
	eng, err := core.New(acc.Schema, acc.Access, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Load(acc.Instance); err != nil {
		log.Fatal(err)
	}

	// 3. Q0: ages of drivers in accidents in Queen's Park on 1/5/2005.
	q := workload.Q0()
	fmt.Println("\nquery:", q)

	res, err := eng.IsCovered(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncovered by the access schema: %v\n", res.Covered)

	// 4. The bounded plan and its static worst-case access bound — the
	//    bound depends on Q and A only, never on |D|.
	p, bound, err := eng.Plan(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + p.String())
	fmt.Println(bound)

	// 5. Serve the query through the unified entry point and compare with
	//    a conventional evaluation. Query carries a context for
	//    cancellation and takes per-call options; here an access budget
	//    admits the request because the static bound fits under it.
	ans, err := eng.Query(context.Background(), q, core.WithAccessBudget(bound.Fetched))
	if err != nil {
		log.Fatal(err)
	}
	base, err := eng.Baseline(q, eval.HashJoin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbounded plan:   %d answers, %d tuples fetched (columns %v)\n",
		len(ans.Rows), ans.Stats.Fetched, ans.Columns)
	fmt.Printf("conventional:   %d answers, %d tuples scanned\n", len(base.Rows), base.Scanned)
	fmt.Printf("data touched:   %.1f%% of the baseline\n",
		100*float64(ans.Stats.Fetched)/float64(base.Scanned))

	// 6. The same request with a budget below the bound is refused before
	//    any data is touched — the paper's static bound as admission
	//    control.
	if _, err := eng.Query(context.Background(), q, core.WithAccessBudget(bound.Fetched-1)); err != nil {
		fmt.Printf("\nwith budget %d: %v\n", bound.Fetched-1, err)
	}
}
