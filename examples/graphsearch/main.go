// Graph search: the Introduction's personalized-search motivation.
//
// Facebook's Graph Search query "find me all my friends in NYC who like
// cycling" only needs data reachable from the designated person, so under
// degree-bounded access constraints it is boundedly evaluable. This
// example encodes a social graph relationally, runs the personalized
// query through the bounded engine, and contrasts it with unanchored
// pattern queries that are NOT boundedly evaluable.
//
// Run: go run ./examples/graphsearch
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/workload"
)

func main() {
	soc, err := workload.GenerateSocial(workload.SocialConfig{
		People: 10000, MaxFriends: 50, MaxLikes: 10, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d tuples\n", soc.Instance.Size())
	fmt.Println("access schema (degree bounds + person key):")
	fmt.Println(soc.Access)

	eng, err := core.New(soc.Schema, soc.Access, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Load(soc.Instance); err != nil {
		log.Fatal(err)
	}

	// The personalized search, anchored at person 17, served through the
	// unified Query entry point with a per-request worker pool.
	q := workload.GraphSearchQuery(17, "NYC", "cycling")
	fmt.Println("\npersonalized query:", q)
	res, err := eng.Query(context.Background(), q, core.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	base, err := eng.Baseline(q, eval.HashJoin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bounded: %d friends found, %d tuples fetched (baseline scanned %d)\n",
		len(res.Rows), res.Stats.Fetched, base.Scanned)

	// The pattern family: anchored patterns are bounded, whole-graph
	// patterns are not (the paper reports 60% of pattern queries bounded).
	fmt.Println("\npattern query family:")
	covered := 0
	patterns := workload.PatternQueries(17)
	for _, pq := range patterns {
		res, err := eng.IsCovered(pq)
		if err != nil {
			log.Fatal(err)
		}
		status := "NOT boundedly evaluable (falls back to scans)"
		if res.Covered {
			covered++
			status = "boundedly evaluable"
		}
		fmt.Printf("  %-12s %s\n", pq.Label+":", status)
	}
	fmt.Printf("\n%d/%d patterns bounded — the paper's Web-graph study found 60%%\n",
		covered, len(patterns))

	// Query picks the right strategy per query: the unanchored census is
	// not bounded, so the default fallback scans — and the result still
	// names its columns.
	census, err := eng.Query(context.Background(), patterns[len(patterns)-1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunanchored census answered via %s (%d rows, columns %v)\n",
		census.Mode, len(census.Rows), census.Columns)

	// Under an access budget the same census is refused outright: a scan
	// carries no static bound, so no budget can admit it.
	if _, err := eng.Query(context.Background(), patterns[len(patterns)-1],
		core.WithAccessBudget(1_000_000)); err != nil {
		fmt.Println("with a 1M-tuple budget:", err)
	}
}
