// Approximate answering: envelopes (Section 4).
//
// When a query is not boundedly evaluable and cannot be specialized,
// upper and lower envelopes give boundedly evaluable approximations with
// constant error bounds: Ql(D) ⊆ Q(D) ⊆ Qu(D) with |Qu(D) − Q(D)| ≤ Nu
// and |Q(D) − Ql(D)| ≤ Nl. This example walks Example 4.1's Q1 end to
// end — finding both envelopes, executing them as bounded plans, and
// verifying the sandwich and the error bounds against the exact answer.
//
// Run: go run ./examples/approximate
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/value"
)

func main() {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R",
		[]schema.Attribute{"A"}, []schema.Attribute{"B"}, 3))

	// Example 4.1's Q1: bounded but not boundedly evaluable.
	q := &cq.CQ{
		Label: "Q1", Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("w"), cq.Var("x")),
			cq.NewAtom("R", cq.Var("y"), cq.Var("w")),
			cq.NewAtom("R", cq.Var("x"), cq.Var("z")),
		},
		Eqs: []cq.Eq{{L: cq.Var("w"), R: cq.Const(value.NewInt(1))}},
	}
	eng, err := core.New(s, a, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)
	if _, _, err := eng.Plan(q); err != nil {
		fmt.Println("not boundedly evaluable — searching for envelopes instead")
	}

	up, err := eng.UpperEnvelope(q)
	if err != nil {
		log.Fatal(err)
	}
	lo, err := eng.LowerEnvelope(q, 1)
	if err != nil {
		log.Fatal(err)
	}
	if !up.Found || !lo.Found {
		log.Fatalf("envelopes should exist for Q1 (upper=%v lower=%v)", up.Found, lo.Found)
	}
	fmt.Println("\nupper envelope Qu:", up.Qu, " Nu ≤", up.Nu)
	fmt.Println("lower envelope Ql:", lo.Ql, " Nl ≤", lo.Nl)

	// Load data satisfying A and verify the sandwich empirically.
	d := buildInstance(s)
	if err := eng.Load(d); err != nil {
		log.Fatal(err)
	}
	exact, err := eng.Baseline(q, eval.ScanJoin)
	if err != nil {
		log.Fatal(err)
	}
	// Query's envelope fallback finds and runs Qu in one call; the result
	// says which strategy answered and carries the envelope it used.
	upRes, err := eng.Query(context.Background(), q, core.WithFallback(core.FallbackEnvelope))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQuery(fallback=envelope) answered via %s (Nu ≤ %d)\n",
		upRes.Mode, upRes.Envelope.Nu)
	loRes, err := eng.Query(context.Background(), lo.Ql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n|D| = %d tuples\n", d.Size())
	fmt.Printf("exact   |Q(D)|  = %d (computed by full scan, %d tuples read)\n",
		len(exact.Rows), exact.Scanned)
	fmt.Printf("upper   |Qu(D)| = %d (bounded plan, %d fetched)\n", len(upRes.Rows), upRes.Stats.Fetched)
	fmt.Printf("lower   |Ql(D)| = %d (bounded plan, %d fetched)\n", len(loRes.Rows), loRes.Stats.Fetched)

	over := diff(upRes.Rows, exact.Rows)
	under := diff(exact.Rows, loRes.Rows)
	fmt.Printf("\n|Qu(D) − Q(D)| = %d  (bound Nu = %d)  ok=%v\n", over, up.Nu, int64(over) <= up.Nu)
	fmt.Printf("|Q(D) − Ql(D)| = %d  (bound Nl = %d)  ok=%v\n", under, lo.Nl, int64(under) <= lo.Nl)
	if containsAll(upRes.Rows, exact.Rows) && containsAll(exact.Rows, loRes.Rows) {
		fmt.Println("sandwich Ql(D) ⊆ Q(D) ⊆ Qu(D) verified")
	} else {
		fmt.Println("ERROR: sandwich violated")
	}
}

func buildInstance(s *schema.Schema) *data.Instance {
	rng := rand.New(rand.NewSource(11))
	d := data.NewInstance(s)
	used := map[int64]int{}
	for i := 0; i < 4000; i++ {
		a := int64(rng.Intn(2000))
		if used[a] >= 3 { // honor R(A -> B, 3)
			continue
		}
		used[a]++
		d.MustInsert("R", value.NewInt(a), value.NewInt(int64(rng.Intn(2000))))
	}
	// Make node 1 interesting: it has successors and predecessors.
	d.MustInsert("R", value.NewInt(1), value.NewInt(42))
	d.MustInsert("R", value.NewInt(42), value.NewInt(1))
	return d
}

func diff(a, b []data.Tuple) int {
	have := map[value.Key]bool{}
	for _, t := range b {
		have[t.Key()] = true
	}
	n := 0
	for _, t := range a {
		if !have[t.Key()] {
			n++
		}
	}
	return n
}

func containsAll(sup, sub []data.Tuple) bool {
	have := map[value.Key]bool{}
	for _, t := range sup {
		have[t.Key()] = true
	}
	for _, t := range sub {
		if !have[t.Key()] {
			return false
		}
	}
	return true
}
